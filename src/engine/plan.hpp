#pragma once
// The compiled execution plan behind rt::Engine: an immutable, inference-only
// representation of a finished ticket.
//
// Engine::compile (engine/engine.hpp) freezes a ResNet into a CompiledTicket:
//   - conv + batch-norm (+ ReLU) folding: each conv's weights are rescaled by
//     gamma / sqrt(var + eps) and the normalization collapses into a per-
//     channel bias, so inference never touches BatchNorm2d again;
//   - per-layer weight packing into a real executable encoding chosen from
//     the hw/storage taxonomy: dense row-major, channel-compact (kept rows
//     stored contiguously — the right shape for row/channel-pruned tickets),
//     or CSR (linalg/sparse.hpp) for unstructured high sparsity, so masked-
//     ticket inference costs O(nonzeros) instead of O(numel);
//   - optional int8 weight quantization via hw/quant (symmetric per-channel):
//     the plan carries the int8 values + scales it ships, and by default
//     EXECUTES them natively — weights packed into the int8 kernel layer's
//     quad panels (linalg/gemm_s8, linalg/microkernel_s8), activations
//     quantized per batch from the amax the preceding epilogue tracked,
//     int32 accumulation with fused requant/bias/ReLU epilogues. Setting
//     CompileOptions::int8_native = false keeps the legacy simulated-PTQ
//     float execution (the accuracy reference the parity tests compare
//     against);
//   - frozen input geometry, so every activation extent is known at compile
//     time and a Workspace can pre-allocate all scratch in one arena.
//
// CompiledTicket is strictly read-only after compile: concurrent predictions
// only need a Workspace each (see engine/engine.hpp's Session).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "linalg/gemm_s8.hpp"
#include "linalg/sparse.hpp"
#include "nn/conv.hpp"
#include "tensor/tensor.hpp"

namespace rt {

/// Executable weight encodings. These mirror the storage-cost taxonomy in
/// hw/storage.hpp (dense / channel-compact / CSR), but hold fp32 values
/// because that is what the CPU kernels consume; int8 quantization is an
/// orthogonal flag (see CompileOptions::int8_weights).
enum class PackedFormat { kDense, kChannelCompact, kCsr };

const char* packed_format_name(PackedFormat format);

struct CompileOptions {
  /// Frozen input geometry. Serving engines trade shape flexibility for
  /// exact buffer planning; predict() rejects other extents.
  std::int64_t height = 16;
  std::int64_t width = 16;

  /// Per-layer packing override; unset selects per layer from the weight's
  /// zero structure (see choose_packed_format).
  std::optional<PackedFormat> force_format;
  /// Unstructured density at or below which CSR wins over the dense kernel's
  /// element-wise zero skipping (~80% sparsity, matching hw/storage).
  float csr_max_density = 0.2f;
  /// Row-structured masks: channel-compact when the kept-row fraction is at
  /// or below this and the surviving rows are mostly dense.
  float compact_max_row_fraction = 0.95f;

  /// Quantize folded weights to int8 (symmetric per output channel) before
  /// packing; the plan's byte accounting prices the int8 encoding.
  bool int8_weights = false;
  int int8_bits = 8;
  /// Execute int8 plans natively on the quantized kernel layer (int32
  /// accumulation, dynamic per-batch activation scales) instead of the
  /// legacy simulated-PTQ float path. Native execution requires the full
  /// 8-bit encoding; narrower int8_bits settings (the bit-width sweeps in
  /// analysis tooling) fall back to simulation automatically.
  bool int8_native = true;
};

/// Chooses the packed encoding for a folded (rows, cols) weight matrix with
/// the given nonzero count and surviving-row count.
PackedFormat choose_packed_format(std::int64_t rows, std::int64_t cols,
                                  std::int64_t nnz, std::int64_t kept_rows,
                                  const CompileOptions& options);

/// Per-layer compilation record, for reporting and format tables.
struct LayerPlan {
  std::string name;
  PackedFormat format = PackedFormat::kDense;
  bool quantized = false;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nnz = 0;
  std::int64_t kept_rows = 0;
  std::int64_t packed_bytes = 0;     ///< executable weights + bias (+ scales)
  /// Host-side micro-kernel panel cache (PackedConv::prepacked): resident
  /// serving memory on top of packed_bytes, but not part of the shippable
  /// encoding — an edge target ships packed_bytes and repacks on device.
  std::int64_t prepacked_bytes = 0;
  std::int64_t dense_macs = 0;       ///< per sample, before sparsity
  std::int64_t effective_macs = 0;   ///< per sample, proportional to nnz
};

class CompiledTicket;

/// Pre-allocated scratch for one in-flight prediction: three rotating
/// full-batch activation buffers plus the channel-compact epilogue scratch,
/// all carved from one contiguous arena sized at construction. The conv
/// kernels gather their packed panels into fixed-size thread-local buffers
/// (no per-layer im2col extent to plan), so steady-state predict() calls
/// perform no heap allocation.
class Workspace {
 public:
  Workspace(const CompiledTicket& plan, int max_batch);

  float* act(int i) { return act_[static_cast<std::size_t>(i)]; }
  float* tmp() { return tmp_; }
  int max_batch() const { return max_batch_; }

  /// int8-native plans only (empty otherwise): the quantized-activation
  /// staging buffer — each layer quantizes its float input batch here in the
  /// flavor its kernel consumes (offset-u8 for the implicit-GEMM and head
  /// paths, signed s8 for the CSR tap path).
  std::uint8_t* qin() { return qin_.data(); }
  /// int8-native plans only: the int32 accumulation plane the fused requant
  /// epilogues drain (sized for the largest conv plane, the CSR batch
  /// accumulator, and the head's logits block).
  std::int32_t* acc() { return acc_.data(); }

 private:
  std::vector<float> arena_;
  std::vector<std::uint8_t> qin_;
  std::vector<std::int32_t> acc_;
  float* act_[3] = {nullptr, nullptr, nullptr};
  float* tmp_ = nullptr;
  int max_batch_ = 0;
};

/// A conv with its batch norm folded in, weights packed, and an optional
/// fused ReLU epilogue.
struct PackedConv {
  std::string name;
  PackedFormat format = PackedFormat::kDense;
  ConvGeometry geom;
  std::int64_t in_ch = 0, out_ch = 0;
  std::int64_t in_h = 0, in_w = 0, out_h = 0, out_w = 0;
  bool relu = false;

  /// kDense: (out_ch, ckk); kChannelCompact: (kept_rows.size(), ckk).
  std::vector<float> weight;
  /// Zero fraction of `weight`, counted once at compile time so the conv
  /// kernel dispatch (packed implicit GEMM vs zero-skipping taps) never
  /// re-probes the weights at serve time.
  float weight_zero_fraction = 0.0f;
  /// Micro-kernel weight panels, packed once at Engine::compile time for
  /// layers the packed implicit-GEMM path will execute — serve-time calls
  /// skip the per-call panel re-pack entirely. Empty for CSR and tap-path
  /// layers, which never consume panels.
  PackedWeights prepacked;
  std::vector<std::int32_t> kept;  ///< kChannelCompact: surviving channels
  CsrMatrix csr;                   ///< kCsr
  /// kCsr implicit-conv tap, one per nonzero: everything the inner loop
  /// needs, resolved at compile time from the frozen geometry. The sparse
  /// conv path slides each nonzero directly over the input — no im2col
  /// materialization and no per-nonzero index arithmetic at runtime — so
  /// cost is O(nnz * out_h * out_w) flat.
  struct SparseTap {
    std::int32_t x_start;       ///< flat offset of the first in-bounds input
    std::int32_t y_start;       ///< flat offset into the output plane
    /// Extent of the valid output window. Full-width stride-1 windows are
    /// collapsed at compile time into rows == 1 with cols == rows * width —
    /// input and output are both contiguous there, so the whole window runs
    /// as one long vectorizable axpy.
    std::int32_t rows, cols;
  };
  std::vector<SparseTap> taps;  ///< parallel to csr.values
  std::vector<float> bias;         ///< per out_ch, from BN folding

  // Shippable int8 sidecar (populated when CompileOptions::int8_weights):
  // one value per stored float above, plus a per-output-channel scale.
  std::vector<std::int8_t> qvalues;
  std::vector<float> qscales;

  // True int8 execution (CompileOptions::int8_native): the sidecar packed
  // into executable operands at compile time. Dense/channel-compact layers
  // carry quad panels + offset corrections (qpacked) and the per-packed-row
  // scale vector the requant epilogue indexes; the CSR tap path executes
  // qvalues + qscales directly over signed-s8 activations. Native layers
  // drop the dequantized float weights — the integers ARE the executable.
  bool int8_exec = false;
  PackedS8 qpacked;
  std::vector<float> qexec_scales;
  /// Precomputed im2col source-index table (build_s8_gather_index) for
  /// narrow-plane layers, where it beats the run-decomposed gather; empty
  /// otherwise.
  std::vector<std::int32_t> qgather;

  std::int64_t in_floats() const { return in_ch * in_h * in_w; }
  std::int64_t out_floats() const { return out_ch * out_h * out_w; }

  /// Runs the folded conv over a batch: in/out are full-batch activation
  /// buffers laid out (n, ch, h, w). Serial by design — Session concurrency
  /// comes from independent predict() calls, not intra-op threading.
  /// int8-native layers additionally take the batch amax of `in` (their
  /// dynamic activation scale) and, when `out_amax` is non-null, report the
  /// batch amax of `out` for the next layer's scale.
  void run(const float* in, float* out, std::int64_t n, Workspace& ws,
           float in_amax = 0.0f, float* out_amax = nullptr) const;

 private:
  /// The int8-native executor behind run(): quantizes the input batch into
  /// the workspace staging buffer and dispatches to the quantized
  /// implicit-GEMM or the integer tap path.
  void run_s8(const float* in, float* out, std::int64_t n, Workspace& ws,
              float in_amax, float* out_amax) const;
};

/// The classifier head with packed weights (dense or CSR).
struct PackedLinear {
  std::string name;
  PackedFormat format = PackedFormat::kDense;
  std::int64_t in_features = 0, out_features = 0;

  std::vector<float> weight;  ///< (out, in) when kDense
  CsrMatrix csr;
  std::vector<float> bias;
  std::vector<std::int8_t> qvalues;
  std::vector<float> qscales;

  // True int8 execution (dense heads only; a CSR head under a native plan
  // keeps the simulated float path — the layer is tiny and spmm already
  // skips zeros): full-depth quad slivers of the (out, in) weights plus the
  // per-output-feature offset correction.
  bool int8_exec = false;
  std::vector<std::int8_t> qslivers;
  std::vector<std::int32_t> qcorr;

  void run(const float* in, float* out, std::int64_t n, Workspace& ws,
           float in_amax = 0.0f) const;
};

/// One residual block: convs fused with their BNs; the shortcut add and
/// final ReLU are applied by the executor.
struct CompiledBlock {
  PackedConv c1, c2;
  std::optional<PackedConv> c3;    ///< bottleneck only
  std::optional<PackedConv> down;  ///< projection shortcut
};

/// The frozen execution plan. Immutable after Engine::compile; safe to share
/// across threads by const reference.
class CompiledTicket {
 public:
  /// Runs n samples (n <= ws.max_batch()) from `x` (n, in_ch, h, w planes,
  /// row-major) writing (n, num_classes) logits to `logits`.
  void run(const float* x, std::int64_t n, float* logits,
           Workspace& ws) const;

  /// Convenience single-shot predict allocating the result tensor; batches
  /// larger than ws.max_batch() are processed in chunks.
  Tensor predict(const Tensor& x, Workspace& ws) const;

  /// Throws unless x is an (n, in_ch, height, width) batch matching the
  /// compiled geometry — the validation predict() applies, exposed for
  /// callers that chunk a batch themselves (Session's scheduler mode).
  void check_input(const Tensor& x) const;

  std::int64_t height() const { return height_; }
  std::int64_t width() const { return width_; }
  std::int64_t in_channels() const { return in_channels_; }
  int num_classes() const { return num_classes_; }
  int feature_dim() const { return feature_dim_; }

  const std::vector<LayerPlan>& layers() const { return layers_; }
  /// Executable (shippable) bytes of all packed weights and biases.
  std::int64_t packed_bytes() const;
  /// Host-resident pre-packed panel bytes on top of packed_bytes().
  std::int64_t prepacked_bytes() const;
  /// Per-sample multiply-accumulate counts summed over all layers.
  std::int64_t dense_macs() const;
  std::int64_t effective_macs() const;

  /// Largest per-sample activation plane across the plan (Workspace sizing).
  std::int64_t max_plane_floats() const { return max_plane_floats_; }
  /// Largest per-sample conv output scratch (channel-compact epilogue).
  std::int64_t tmp_floats() const { return tmp_floats_; }
  /// Largest conv output spatial plane (Workspace int8 accumulator sizing).
  std::int64_t max_ohw() const { return max_ohw_; }
  /// True when this plan executes the int8 kernel layer natively (the
  /// Workspace then carves the quantized-activation and int32 arenas).
  bool int8_native() const { return int8_native_; }

 private:
  friend class Engine;

  PackedConv stem_;
  std::vector<CompiledBlock> blocks_;
  PackedLinear head_;

  std::int64_t height_ = 0, width_ = 0, in_channels_ = 0;
  std::int64_t feat_h_ = 0, feat_w_ = 0;  ///< spatial extent entering GAP
  int num_classes_ = 0, feature_dim_ = 0;
  std::int64_t max_plane_floats_ = 0, tmp_floats_ = 0, max_ohw_ = 0;
  bool int8_native_ = false;
  std::vector<LayerPlan> layers_;
};

}  // namespace rt
