#include "engine/plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/audit.hpp"
#include "linalg/conv.hpp"
#include "linalg/gemm.hpp"
#include "linalg/microkernel_s8.hpp"

namespace rt {

namespace {

/// Shortcut add + ReLU. When `track_amax` (int8-native plans), returns the
/// batch max of the result — the ReLU output is non-negative, so the max
/// value IS the amax the next layer's activation quantization needs. The
/// arithmetic is identical either way, so fp32 plans pay nothing.
float add_relu_inplace(float* dst, const float* src, std::int64_t count,
                       bool track_amax) {
  if (!track_amax) {
    for (std::int64_t j = 0; j < count; ++j) {
      dst[j] = std::max(dst[j] + src[j], 0.0f);
    }
    return 0.0f;
  }
  float amax = 0.0f;
  for (std::int64_t j = 0; j < count; ++j) {
    const float v = std::max(dst[j] + src[j], 0.0f);
    dst[j] = v;
    amax = std::max(amax, v);
  }
  return amax;
}

}  // namespace

const char* packed_format_name(PackedFormat format) {
  switch (format) {
    case PackedFormat::kDense: return "dense";
    case PackedFormat::kChannelCompact: return "chan-compact";
    case PackedFormat::kCsr: return "csr";
  }
  return "unknown";
}

PackedFormat choose_packed_format(std::int64_t rows, std::int64_t cols,
                                  std::int64_t nnz, std::int64_t kept_rows,
                                  const CompileOptions& options) {
  if (options.force_format) return *options.force_format;
  if (rows <= 0 || cols <= 0) return PackedFormat::kDense;
  if (kept_rows == 0) return PackedFormat::kChannelCompact;
  const double density = static_cast<double>(nnz) /
                         static_cast<double>(rows * cols);
  const double kept_frac = static_cast<double>(kept_rows) /
                           static_cast<double>(rows);
  // Row-structured sparsity: the surviving rows are mostly dense, so compact
  // them and run the dense kernel at reduced height.
  if (kept_frac <= options.compact_max_row_fraction &&
      density / kept_frac >= 0.5) {
    return PackedFormat::kChannelCompact;
  }
  if (density <= options.csr_max_density) return PackedFormat::kCsr;
  return PackedFormat::kDense;
}

// ---- Workspace --------------------------------------------------------------

Workspace::Workspace(const CompiledTicket& plan, int max_batch)
    : max_batch_(std::max(1, max_batch)) {
  const std::int64_t act = plan.max_plane_floats() * max_batch_;
  arena_.assign(static_cast<std::size_t>(3 * act + plan.tmp_floats()), 0.0f);
  act_[0] = arena_.data();
  act_[1] = arena_.data() + act;
  act_[2] = arena_.data() + 2 * act;
  tmp_ = arena_.data() + 3 * act;
  if (plan.int8_native()) {
    // Quantized-activation staging: one batch of the largest plane, +4 bytes
    // per sample so the head can quad-pad its feature rows in place.
    qin_.assign(static_cast<std::size_t>(max_batch_ *
                                         (plan.max_plane_floats() + 4)),
                0);
    // int32 accumulator: the per-plane conv accumulation (<= the largest
    // activation plane), the CSR tap path's whole-batch row plane, and the
    // head's (n, num_classes) logits block all drain through it.
    const std::int64_t acc = std::max(
        {plan.max_plane_floats(), max_batch_ * plan.max_ohw(),
         max_batch_ * static_cast<std::int64_t>(plan.num_classes())});
    acc_.assign(static_cast<std::size_t>(acc), 0);
  }
}

// ---- PackedConv -------------------------------------------------------------

RT_HOT void PackedConv::run(const float* in, float* out, std::int64_t n,
                            Workspace& ws, float in_amax,
                            float* out_amax) const {
  const std::int64_t ohw = out_h * out_w;
  const std::int64_t stride_w = geom.stride * in_w;
  if (int8_exec) {
    run_s8(in, out, n, ws, in_amax, out_amax);
    return;
  }
  if (format == PackedFormat::kCsr) {
    // Implicit sparse conv: slide each nonzero tap over the input. All index
    // arithmetic was resolved into the tap at compile time; the batch loop
    // sits INSIDE the tap loop so per-nonzero setup amortizes over the batch
    // and the weight stream stays hot. Outputs start at the folded bias, so
    // no separate add pass is needed.
    const std::int64_t in_f = in_floats(), out_f = out_floats();
    for (std::int64_t r = 0; r < out_ch; ++r) {
      float* yrow = out + r * ohw;
      const float b = bias[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < n; ++i) {
        float* yr = yrow + i * out_f;
        for (std::int64_t j = 0; j < ohw; ++j) yr[j] = b;
      }
      const std::int32_t begin = csr.row_ptr[static_cast<std::size_t>(r)];
      const std::int32_t end = csr.row_ptr[static_cast<std::size_t>(r) + 1];
      for (std::int32_t t = begin; t < end; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const float v = csr.values[ti];
        const SparseTap& tap = taps[ti];
        const float* __restrict xr = in + tap.x_start;
        float* __restrict yr = yrow + tap.y_start;
        for (std::int64_t i = 0; i < n; ++i, xr += in_f, yr += out_f) {
          const float* __restrict xw = xr;
          float* __restrict yw = yr;
          if (geom.stride == 1) {
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += in_w, yw += out_w) {
              for (std::int32_t oj = 0; oj < tap.cols; ++oj) {
                yw[oj] += v * xw[oj];
              }
            }
          } else {
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += stride_w, yw += out_w) {
              for (std::int32_t oj = 0; oj < tap.cols; ++oj) {
                yw[oj] += v * xw[oj * geom.stride];
              }
            }
          }
        }
      }
      if (relu) {
        for (std::int64_t i = 0; i < n; ++i) {
          float* yr = yrow + i * out_f;
          for (std::int64_t j = 0; j < ohw; ++j) {
            yr[j] = std::max(yr[j], 0.0f);
          }
        }
      }
    }
    return;
  }
  // Dense-style formats run the fused implicit-GEMM forward: virtual im2col
  // panels are gathered on the fly into the packed micro-kernel layout, so
  // the per-sample column buffer is never materialized. The compile-time
  // zero fraction steers the kernel onto its tap path for weights that are
  // masked but not sparse enough for CSR; layers the packed path executes
  // carry compile-time pre-packed weight panels.
  ConvKernelOpts kopts;
  kopts.weight_zero_fraction = weight_zero_fraction;
  kopts.packed_weights = &prepacked;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* xi = in + i * in_floats();
    float* yi = out + i * out_floats();
    switch (format) {
      case PackedFormat::kDense:
        conv2d_forward_plane(xi, in_ch, in_h, in_w, geom, weight.data(),
                             out_ch, yi, bias.data(), relu, kopts);
        break;
      case PackedFormat::kCsr:
        break;  // handled above
      case PackedFormat::kChannelCompact: {
        const auto kr = static_cast<std::int64_t>(kept.size());
        if (kr > 0) {
          conv2d_forward_plane(xi, in_ch, in_h, in_w, geom, weight.data(), kr,
                               ws.tmp(), /*bias=*/nullptr, /*relu=*/false,
                               kopts);
        }
        // Scatter surviving rows; pruned channels carry only their folded
        // bias (a zero conv row through BN is a per-channel constant).
        std::int64_t ki = 0;
        for (std::int64_t oc = 0; oc < out_ch; ++oc) {
          const float b = bias[static_cast<std::size_t>(oc)];
          float* yrow = yi + oc * ohw;
          if (ki < kr && kept[static_cast<std::size_t>(ki)] == oc) {
            const float* trow = ws.tmp() + ki * ohw;
            if (relu) {
              for (std::int64_t j = 0; j < ohw; ++j) {
                yrow[j] = std::max(trow[j] + b, 0.0f);
              }
            } else {
              for (std::int64_t j = 0; j < ohw; ++j) yrow[j] = trow[j] + b;
            }
            ++ki;
          } else {
            const float v = relu ? std::max(b, 0.0f) : b;
            for (std::int64_t j = 0; j < ohw; ++j) yrow[j] = v;
          }
        }
        break;
      }
    }
  }
}

RT_HOT void PackedConv::run_s8(const float* in, float* out, std::int64_t n,
                               Workspace& ws, float in_amax,
                               float* out_amax) const {
  const std::int64_t ohw = out_h * out_w;
  const std::int64_t in_f = in_floats(), out_f = out_floats();
  const float sx = act_scale_for(in_amax);
  if (out_amax != nullptr) *out_amax = 0.0f;
  if (format == PackedFormat::kCsr) {
    // Integer tap path over SIGNED s8 activations: tap windows give border
    // pixels per-pixel tap subsets, so the u8 offset trick's per-row
    // constant correction does not apply here — signed input needs none.
    // Structure mirrors the float tap path (batch inside tap, fixed
    // accumulation order), with one (n, ohw) int32 plane per output row and
    // the requant fused into the row drain. Bitwise deterministic: integer
    // accumulation, one float expression per output.
    std::int8_t* qx = reinterpret_cast<std::int8_t*>(ws.qin());
    quantize_s8(in, n * in_f, sx, qx);
    std::int32_t* acc = ws.acc();
    const std::int64_t stride_w = geom.stride * in_w;
    float amax = out_amax != nullptr ? *out_amax : 0.0f;
    for (std::int64_t r = 0; r < out_ch; ++r) {
      std::memset(acc, 0,
                  static_cast<std::size_t>(n * ohw) * sizeof(std::int32_t));
      const std::int32_t begin = csr.row_ptr[static_cast<std::size_t>(r)];
      const std::int32_t end = csr.row_ptr[static_cast<std::size_t>(r) + 1];
      for (std::int32_t t = begin; t < end; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const std::int32_t v = qvalues[ti];
        const SparseTap& tap = taps[ti];
        const std::int8_t* __restrict xr = qx + tap.x_start;
        std::int32_t* __restrict yr = acc + tap.y_start;
        for (std::int64_t i = 0; i < n; ++i, xr += in_f, yr += ohw) {
          const std::int8_t* __restrict xw = xr;
          std::int32_t* __restrict yw = yr;
          if (geom.stride == 1 && tap.cols >= 16) {
            // Wide rows amortize the vectorized axpy's call overhead;
            // narrow-plane taps (2-8 columns) stay in the scalar loop below.
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += in_w, yw += out_w) {
              axpy_s8_s32(xw, v, yw, tap.cols);
            }
          } else if (geom.stride == 1) {
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += in_w, yw += out_w) {
              for (std::int32_t oj = 0; oj < tap.cols; ++oj) {
                yw[oj] += v * static_cast<std::int32_t>(xw[oj]);
              }
            }
          } else {
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += stride_w, yw += out_w) {
              for (std::int32_t oj = 0; oj < tap.cols; ++oj) {
                yw[oj] += v * static_cast<std::int32_t>(xw[oj * geom.stride]);
              }
            }
          }
        }
      }
      // Row drain. Wide planes go through the shared vectorized requant
      // epilogue (rows == 1 per call: the per-row fields are all channel
      // r's, no offset correction — the tap path runs signed activations);
      // tiny planes keep a scalar loop, which beats the epilogue's per-call
      // setup at 4-16 outputs.
      if (ohw >= 32) {
        S8Epilogue ep;
        ep.scales = qscales.data() + r;
        ep.act_scale = sx;
        ep.bias = bias.data() + r;
        ep.relu = relu;
        ep.amax = &amax;
        for (std::int64_t i = 0; i < n; ++i) {
          requant_rows(acc + i * ohw, ohw, 1, ohw, ep,
                       out + i * out_f + r * ohw, ohw);
        }
      } else {
        const float s = sx * qscales[static_cast<std::size_t>(r)];
        const float b = bias[static_cast<std::size_t>(r)];
        for (std::int64_t i = 0; i < n; ++i) {
          const std::int32_t* arow = acc + i * ohw;
          float* yrow = out + i * out_f + r * ohw;
          for (std::int64_t j = 0; j < ohw; ++j) {
            float y = static_cast<float>(arow[j]) * s + b;
            if (relu) y = std::max(y, 0.0f);
            yrow[j] = y;
            amax = std::max(amax, std::fabs(y));
          }
        }
      }
    }
    if (out_amax != nullptr) *out_amax = amax;
    return;
  }
  // Dense / channel-compact: quantized implicit-GEMM per sample over the
  // offset-u8 batch, fused requant epilogue straight into the activation
  // buffer (dense) or the epilogue scratch for the kept-row scatter.
  quantize_u8(in, n * in_f, sx, ws.qin());
  const std::int64_t kr = format == PackedFormat::kChannelCompact
                              ? static_cast<std::int64_t>(kept.size())
                              : out_ch;
  S8Epilogue ep;
  ep.scales = qexec_scales.data();
  ep.act_scale = sx;
  ep.corr = qpacked.corr();
  float amax = out_amax != nullptr ? *out_amax : 0.0f;
  if (format == PackedFormat::kDense) {
    // Whole batch as one implicit GEMM: (sample, pixel) columns amortize
    // staging and tile fixed costs that dominate the network's tiny planes.
    ep.bias = bias.data();
    ep.relu = relu;
    ep.amax = out_amax;
    conv2d_forward_batch_s8(ws.qin(), n, in_f, in_ch, in_h, in_w, geom,
                            qpacked.panels(), out_ch, ws.acc(), out, out_f,
                            ep, qgather.empty() ? nullptr : qgather.data());
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    const std::uint8_t* qxi = ws.qin() + i * in_f;
    float* yi = out + i * out_f;
    if (kr > 0) {
      ep.bias = nullptr;
      ep.relu = false;
      ep.amax = nullptr;
      conv2d_forward_plane_s8(qxi, in_ch, in_h, in_w, geom, qpacked.panels(),
                              kr, ws.acc(), ws.tmp(), ep,
                              qgather.empty() ? nullptr : qgather.data());
    }
    // Kept-row scatter, same as the float path but tracking the batch amax.
    std::int64_t ki = 0;
    for (std::int64_t oc = 0; oc < out_ch; ++oc) {
      const float b = bias[static_cast<std::size_t>(oc)];
      float* yrow = yi + oc * ohw;
      if (ki < kr && kept[static_cast<std::size_t>(ki)] == oc) {
        const float* trow = ws.tmp() + ki * ohw;
        for (std::int64_t j = 0; j < ohw; ++j) {
          float y = trow[j] + b;
          if (relu && y < 0.0f) y = 0.0f;
          yrow[j] = y;
          const float a = std::fabs(y);
          if (a > amax) amax = a;
        }
        ++ki;
      } else {
        const float v = relu ? std::max(b, 0.0f) : b;
        for (std::int64_t j = 0; j < ohw; ++j) yrow[j] = v;
        const float a = std::fabs(v);
        if (a > amax) amax = a;
      }
    }
  }
  if (out_amax != nullptr && format == PackedFormat::kChannelCompact) {
    *out_amax = amax;
  }
}

// ---- PackedLinear -----------------------------------------------------------

RT_HOT void PackedLinear::run(const float* in, float* out, std::int64_t n,
                              Workspace& ws, float in_amax) const {
  if (int8_exec) {
    // Offset-u8 feature rows (quad-padded with the zero encoding) against
    // the prepacked weight slivers; bias fuses into the requant epilogue.
    const std::int64_t k4 = round_up4(in_features);
    const float sx = act_scale_for(in_amax);
    std::uint8_t* qx = ws.qin();
    for (std::int64_t i = 0; i < n; ++i) {
      quantize_u8(in + i * in_features, in_features, sx, qx + i * k4);
      for (std::int64_t p = in_features; p < k4; ++p) qx[i * k4 + p] = 128;
    }
    S8Epilogue ep;
    ep.scales = qscales.data();
    ep.act_scale = sx;
    ep.corr = qcorr.data();
    ep.bias = bias.data();
    gemm_s8_nt(n, out_features, in_features, qx, k4, qslivers.data(),
               ws.acc(), out, ep);
    return;
  }
  if (format == PackedFormat::kCsr) {
    spmm_csr_rhs_t(csr, n, in, out);
  } else {
    gemm_nt(n, out_features, in_features, in, weight.data(), out,
            {.accumulate = false, .parallel = false,
             .skip_zero_b_rows = false});
  }
  for (std::int64_t i = 0; i < n; ++i) {
    float* yrow = out + i * out_features;
    for (std::int64_t j = 0; j < out_features; ++j) {
      yrow[j] += bias[static_cast<std::size_t>(j)];
    }
  }
}

// ---- CompiledTicket ---------------------------------------------------------

RT_HOT void CompiledTicket::run(const float* x, std::int64_t n, float* logits,
                                Workspace& ws) const {
  if (n <= 0) return;
  if (n > ws.max_batch()) {
    throw std::invalid_argument("CompiledTicket::run: batch > workspace");
  }
  // int8-native plans thread a per-batch activation amax between layers:
  // each layer's epilogue tracks the max it produced, and the next layer
  // derives its dynamic activation scale from it. Only amaxes a quantized
  // consumer reads are tracked — shortcut branches feed the float add+ReLU,
  // which computes the merged amax itself.
  const bool q8 = int8_native_;
  float a_cur = q8 ? amax_abs(x, n * in_channels_ * height_ * width_) : 0.0f;
  float* const track = q8 ? &a_cur : nullptr;
  stem_.run(x, ws.act(0), n, ws, a_cur, track);
  int cur = 0;
  for (const CompiledBlock& b : blocks_) {
    const int ia = (cur + 1) % 3;
    const int ib = (cur + 2) % 3;
    const float* block_in = ws.act(cur);
    if (!b.c3) {
      // Basic: in -> c1 -> c2; shortcut = in or projection; add + ReLU.
      float a1 = 0.0f;
      b.c1.run(block_in, ws.act(ia), n, ws, a_cur, q8 ? &a1 : nullptr);
      b.c2.run(ws.act(ia), ws.act(ib), n, ws, a1, nullptr);
      const float* shortcut = block_in;
      if (b.down) {
        b.down->run(block_in, ws.act(ia), n, ws, a_cur, nullptr);
        shortcut = ws.act(ia);
      }
      a_cur = add_relu_inplace(ws.act(ib), shortcut, n * b.c2.out_floats(),
                               q8);
      cur = ib;
    } else {
      // Bottleneck: in -> c1 -> c2 -> c3; buffer ia is free again once c2
      // has consumed it, and ib once c3 has.
      float a1 = 0.0f, a2 = 0.0f;
      b.c1.run(block_in, ws.act(ia), n, ws, a_cur, q8 ? &a1 : nullptr);
      b.c2.run(ws.act(ia), ws.act(ib), n, ws, a1, q8 ? &a2 : nullptr);
      b.c3->run(ws.act(ib), ws.act(ia), n, ws, a2, nullptr);
      const float* shortcut = block_in;
      if (b.down) {
        b.down->run(block_in, ws.act(ib), n, ws, a_cur, nullptr);
        shortcut = ws.act(ib);
      }
      a_cur = add_relu_inplace(ws.act(ia), shortcut, n * b.c3->out_floats(),
                               q8);
      cur = ia;
    }
  }
  // Global average pooling into a free buffer, then the head. The pooled
  // features' amax falls out of the same pass for the quantized head.
  const int fi = (cur + 1) % 3;
  const std::int64_t plane = feat_h_ * feat_w_;
  const float inv = 1.0f / static_cast<float>(plane);
  float* feat = ws.act(fi);
  const float* act = ws.act(cur);
  float a_feat = 0.0f;
  for (std::int64_t p = 0; p < n * feature_dim_; ++p) {
    const float* src = act + p * plane;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < plane; ++j) acc += src[j];
    const float v = acc * inv;
    feat[p] = v;
    const float a = std::fabs(v);
    if (a > a_feat) a_feat = a;
  }
  head_.run(feat, logits, n, ws, a_feat);
}

void CompiledTicket::check_input(const Tensor& x) const {
  if (x.ndim() != 4 || x.dim(1) != in_channels_ || x.dim(2) != height_ ||
      x.dim(3) != width_) {
    throw std::invalid_argument(
        "CompiledTicket::predict: input " + x.shape_str() +
        " does not match the compiled geometry");
  }
}

Tensor CompiledTicket::predict(const Tensor& x, Workspace& ws) const {
  check_input(x);
  const std::int64_t n = x.dim(0);
  const std::int64_t plane = in_channels_ * height_ * width_;
  Tensor logits({n, num_classes_});
  for (std::int64_t i = 0; i < n; i += ws.max_batch()) {
    const std::int64_t chunk = std::min<std::int64_t>(ws.max_batch(), n - i);
    run(x.data() + i * plane, chunk, logits.data() + i * num_classes_, ws);
  }
  return logits;
}

std::int64_t CompiledTicket::packed_bytes() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.packed_bytes;
  return total;
}

std::int64_t CompiledTicket::prepacked_bytes() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.prepacked_bytes;
  return total;
}

std::int64_t CompiledTicket::dense_macs() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.dense_macs;
  return total;
}

std::int64_t CompiledTicket::effective_macs() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.effective_macs;
  return total;
}

}  // namespace rt
