#include "engine/plan.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/audit.hpp"
#include "linalg/conv.hpp"
#include "linalg/gemm.hpp"

namespace rt {

namespace {

void add_relu_inplace(float* dst, const float* src, std::int64_t count) {
  for (std::int64_t j = 0; j < count; ++j) {
    dst[j] = std::max(dst[j] + src[j], 0.0f);
  }
}

}  // namespace

const char* packed_format_name(PackedFormat format) {
  switch (format) {
    case PackedFormat::kDense: return "dense";
    case PackedFormat::kChannelCompact: return "chan-compact";
    case PackedFormat::kCsr: return "csr";
  }
  return "unknown";
}

PackedFormat choose_packed_format(std::int64_t rows, std::int64_t cols,
                                  std::int64_t nnz, std::int64_t kept_rows,
                                  const CompileOptions& options) {
  if (options.force_format) return *options.force_format;
  if (rows <= 0 || cols <= 0) return PackedFormat::kDense;
  if (kept_rows == 0) return PackedFormat::kChannelCompact;
  const double density = static_cast<double>(nnz) /
                         static_cast<double>(rows * cols);
  const double kept_frac = static_cast<double>(kept_rows) /
                           static_cast<double>(rows);
  // Row-structured sparsity: the surviving rows are mostly dense, so compact
  // them and run the dense kernel at reduced height.
  if (kept_frac <= options.compact_max_row_fraction &&
      density / kept_frac >= 0.5) {
    return PackedFormat::kChannelCompact;
  }
  if (density <= options.csr_max_density) return PackedFormat::kCsr;
  return PackedFormat::kDense;
}

// ---- Workspace --------------------------------------------------------------

Workspace::Workspace(const CompiledTicket& plan, int max_batch)
    : max_batch_(std::max(1, max_batch)) {
  const std::int64_t act = plan.max_plane_floats() * max_batch_;
  arena_.assign(static_cast<std::size_t>(3 * act + plan.tmp_floats()), 0.0f);
  act_[0] = arena_.data();
  act_[1] = arena_.data() + act;
  act_[2] = arena_.data() + 2 * act;
  tmp_ = arena_.data() + 3 * act;
}

// ---- PackedConv -------------------------------------------------------------

RT_HOT void PackedConv::run(const float* in, float* out, std::int64_t n,
                            Workspace& ws) const {
  const std::int64_t ohw = out_h * out_w;
  const std::int64_t stride_w = geom.stride * in_w;
  if (format == PackedFormat::kCsr) {
    // Implicit sparse conv: slide each nonzero tap over the input. All index
    // arithmetic was resolved into the tap at compile time; the batch loop
    // sits INSIDE the tap loop so per-nonzero setup amortizes over the batch
    // and the weight stream stays hot. Outputs start at the folded bias, so
    // no separate add pass is needed.
    const std::int64_t in_f = in_floats(), out_f = out_floats();
    for (std::int64_t r = 0; r < out_ch; ++r) {
      float* yrow = out + r * ohw;
      const float b = bias[static_cast<std::size_t>(r)];
      for (std::int64_t i = 0; i < n; ++i) {
        float* yr = yrow + i * out_f;
        for (std::int64_t j = 0; j < ohw; ++j) yr[j] = b;
      }
      const std::int32_t begin = csr.row_ptr[static_cast<std::size_t>(r)];
      const std::int32_t end = csr.row_ptr[static_cast<std::size_t>(r) + 1];
      for (std::int32_t t = begin; t < end; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const float v = csr.values[ti];
        const SparseTap& tap = taps[ti];
        const float* __restrict xr = in + tap.x_start;
        float* __restrict yr = yrow + tap.y_start;
        for (std::int64_t i = 0; i < n; ++i, xr += in_f, yr += out_f) {
          const float* __restrict xw = xr;
          float* __restrict yw = yr;
          if (geom.stride == 1) {
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += in_w, yw += out_w) {
              for (std::int32_t oj = 0; oj < tap.cols; ++oj) {
                yw[oj] += v * xw[oj];
              }
            }
          } else {
            for (std::int32_t oi = 0; oi < tap.rows;
                 ++oi, xw += stride_w, yw += out_w) {
              for (std::int32_t oj = 0; oj < tap.cols; ++oj) {
                yw[oj] += v * xw[oj * geom.stride];
              }
            }
          }
        }
      }
      if (relu) {
        for (std::int64_t i = 0; i < n; ++i) {
          float* yr = yrow + i * out_f;
          for (std::int64_t j = 0; j < ohw; ++j) {
            yr[j] = std::max(yr[j], 0.0f);
          }
        }
      }
    }
    return;
  }
  // Dense-style formats run the fused implicit-GEMM forward: virtual im2col
  // panels are gathered on the fly into the packed micro-kernel layout, so
  // the per-sample column buffer is never materialized. The compile-time
  // zero fraction steers the kernel onto its tap path for weights that are
  // masked but not sparse enough for CSR; layers the packed path executes
  // carry compile-time pre-packed weight panels.
  ConvKernelOpts kopts;
  kopts.weight_zero_fraction = weight_zero_fraction;
  kopts.packed_weights = &prepacked;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* xi = in + i * in_floats();
    float* yi = out + i * out_floats();
    switch (format) {
      case PackedFormat::kDense:
        conv2d_forward_plane(xi, in_ch, in_h, in_w, geom, weight.data(),
                             out_ch, yi, bias.data(), relu, kopts);
        break;
      case PackedFormat::kCsr:
        break;  // handled above
      case PackedFormat::kChannelCompact: {
        const auto kr = static_cast<std::int64_t>(kept.size());
        if (kr > 0) {
          conv2d_forward_plane(xi, in_ch, in_h, in_w, geom, weight.data(), kr,
                               ws.tmp(), /*bias=*/nullptr, /*relu=*/false,
                               kopts);
        }
        // Scatter surviving rows; pruned channels carry only their folded
        // bias (a zero conv row through BN is a per-channel constant).
        std::int64_t ki = 0;
        for (std::int64_t oc = 0; oc < out_ch; ++oc) {
          const float b = bias[static_cast<std::size_t>(oc)];
          float* yrow = yi + oc * ohw;
          if (ki < kr && kept[static_cast<std::size_t>(ki)] == oc) {
            const float* trow = ws.tmp() + ki * ohw;
            if (relu) {
              for (std::int64_t j = 0; j < ohw; ++j) {
                yrow[j] = std::max(trow[j] + b, 0.0f);
              }
            } else {
              for (std::int64_t j = 0; j < ohw; ++j) yrow[j] = trow[j] + b;
            }
            ++ki;
          } else {
            const float v = relu ? std::max(b, 0.0f) : b;
            for (std::int64_t j = 0; j < ohw; ++j) yrow[j] = v;
          }
        }
        break;
      }
    }
  }
}

// ---- PackedLinear -----------------------------------------------------------

RT_HOT void PackedLinear::run(const float* in, float* out,
                              std::int64_t n) const {
  if (format == PackedFormat::kCsr) {
    spmm_csr_rhs_t(csr, n, in, out);
  } else {
    gemm_nt(n, out_features, in_features, in, weight.data(), out,
            {.accumulate = false, .parallel = false,
             .skip_zero_b_rows = false});
  }
  for (std::int64_t i = 0; i < n; ++i) {
    float* yrow = out + i * out_features;
    for (std::int64_t j = 0; j < out_features; ++j) {
      yrow[j] += bias[static_cast<std::size_t>(j)];
    }
  }
}

// ---- CompiledTicket ---------------------------------------------------------

RT_HOT void CompiledTicket::run(const float* x, std::int64_t n, float* logits,
                                Workspace& ws) const {
  if (n <= 0) return;
  if (n > ws.max_batch()) {
    throw std::invalid_argument("CompiledTicket::run: batch > workspace");
  }
  stem_.run(x, ws.act(0), n, ws);
  int cur = 0;
  for (const CompiledBlock& b : blocks_) {
    const int ia = (cur + 1) % 3;
    const int ib = (cur + 2) % 3;
    const float* block_in = ws.act(cur);
    if (!b.c3) {
      // Basic: in -> c1 -> c2; shortcut = in or projection; add + ReLU.
      b.c1.run(block_in, ws.act(ia), n, ws);
      b.c2.run(ws.act(ia), ws.act(ib), n, ws);
      const float* shortcut = block_in;
      if (b.down) {
        b.down->run(block_in, ws.act(ia), n, ws);
        shortcut = ws.act(ia);
      }
      add_relu_inplace(ws.act(ib), shortcut, n * b.c2.out_floats());
      cur = ib;
    } else {
      // Bottleneck: in -> c1 -> c2 -> c3; buffer ia is free again once c2
      // has consumed it, and ib once c3 has.
      b.c1.run(block_in, ws.act(ia), n, ws);
      b.c2.run(ws.act(ia), ws.act(ib), n, ws);
      b.c3->run(ws.act(ib), ws.act(ia), n, ws);
      const float* shortcut = block_in;
      if (b.down) {
        b.down->run(block_in, ws.act(ib), n, ws);
        shortcut = ws.act(ib);
      }
      add_relu_inplace(ws.act(ia), shortcut, n * b.c3->out_floats());
      cur = ia;
    }
  }
  // Global average pooling into a free buffer, then the head.
  const int fi = (cur + 1) % 3;
  const std::int64_t plane = feat_h_ * feat_w_;
  const float inv = 1.0f / static_cast<float>(plane);
  float* feat = ws.act(fi);
  const float* act = ws.act(cur);
  for (std::int64_t p = 0; p < n * feature_dim_; ++p) {
    const float* src = act + p * plane;
    float acc = 0.0f;
    for (std::int64_t j = 0; j < plane; ++j) acc += src[j];
    feat[p] = acc * inv;
  }
  head_.run(feat, logits, n);
}

void CompiledTicket::check_input(const Tensor& x) const {
  if (x.ndim() != 4 || x.dim(1) != in_channels_ || x.dim(2) != height_ ||
      x.dim(3) != width_) {
    throw std::invalid_argument(
        "CompiledTicket::predict: input " + x.shape_str() +
        " does not match the compiled geometry");
  }
}

Tensor CompiledTicket::predict(const Tensor& x, Workspace& ws) const {
  check_input(x);
  const std::int64_t n = x.dim(0);
  const std::int64_t plane = in_channels_ * height_ * width_;
  Tensor logits({n, num_classes_});
  for (std::int64_t i = 0; i < n; i += ws.max_batch()) {
    const std::int64_t chunk = std::min<std::int64_t>(ws.max_batch(), n - i);
    run(x.data() + i * plane, chunk, logits.data() + i * num_classes_, ws);
  }
  return logits;
}

std::int64_t CompiledTicket::packed_bytes() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.packed_bytes;
  return total;
}

std::int64_t CompiledTicket::prepacked_bytes() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.prepacked_bytes;
  return total;
}

std::int64_t CompiledTicket::dense_macs() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.dense_macs;
  return total;
}

std::int64_t CompiledTicket::effective_macs() const {
  std::int64_t total = 0;
  for (const LayerPlan& l : layers_) total += l.effective_macs;
  return total;
}

}  // namespace rt
