#pragma once
// Layer abstraction with explicit manual backpropagation.
//
// Every layer caches what it needs during forward() and implements
// backward(grad_out) -> grad_in, accumulating parameter gradients as a side
// effect. Manual backprop (instead of an autograd tape) is a deliberate
// choice: PGD attacks need input gradients, LMP needs straight-through
// estimation on masks, and IMP needs weight rewinding — all of which want
// direct control over the backward pass.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace rt {

/// What a parameter tensor represents; drives pruning eligibility and
/// structured-granularity grouping.
enum class ParamKind {
  kConvWeight,    ///< (out_ch, in_ch * k * k) matrix of a Conv2d
  kLinearWeight,  ///< (out, in) matrix of a Linear
  kBias,
  kBnGamma,
  kBnBeta,
};

/// A trainable tensor with gradient and an optional binary sparsity mask.
///
/// Mask semantics (the ticket contract): when a mask is installed,
/// value == value * mask holds after every optimizer step, and gradients of
/// masked-out entries are zeroed before the update. apply_mask()/mask_grad()
/// enforce this; SGD calls them automatically.
struct Parameter {
  std::string name;
  ParamKind kind = ParamKind::kBias;
  Tensor value;
  Tensor grad;
  Tensor mask;  ///< empty => dense
  bool trainable = true;

  // Conv geometry, needed to map the flattened weight matrix onto
  // channel/kernel/row structured-pruning groups.
  std::int64_t conv_in_channels = 0;
  std::int64_t conv_kernel = 0;

  /// True for weights that pruning may remove (conv + linear weights).
  bool prunable() const {
    return kind == ParamKind::kConvWeight || kind == ParamKind::kLinearWeight;
  }
  bool has_mask() const { return !mask.empty(); }
  void zero_grad() { grad.fill_(0.0f); }
  /// value *= mask (no-op when dense).
  void apply_mask();
  /// grad *= mask (no-op when dense).
  void mask_grad();
  /// Installs a mask (must match value's shape) and immediately applies it.
  void set_mask(Tensor m);
  /// Removes the mask (weights keep their current, possibly zeroed, values).
  void clear_mask() { mask = Tensor(); }
};

/// Base class for all layers and composite networks.
class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the output and caches activations needed by backward().
  virtual Tensor forward(const Tensor& x) = 0;

  /// Propagates grad_out (same shape as the last forward output) back to the
  /// input, accumulating parameter .grad along the way. Must be called after
  /// a matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends raw pointers to all parameters owned (transitively) by this
  /// module. Pointers remain valid for the module's lifetime.
  virtual void collect_parameters(std::vector<Parameter*>& out) = 0;

  /// Switches train/eval behaviour (batch-norm statistics, etc.).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Non-parameter persistent state (batch-norm running statistics).
  /// Names must be unique within a model.
  using NamedTensor = std::pair<std::string, Tensor*>;
  virtual void collect_buffers(std::vector<NamedTensor>& out) {
    (void)out;
  }

  std::vector<Parameter*> parameters();
  void zero_grad();
  /// Total number of scalar parameters.
  std::int64_t num_parameters();
  /// Number of scalars kept by masks (== num_parameters when dense).
  std::int64_t num_unmasked_parameters();

  /// Snapshot of all parameter values and buffers, keyed by name.
  StateDict state_dict();
  /// Restores parameter values and buffers by name. Throws if a stored entry
  /// has no matching destination or shapes differ; entries missing from
  /// `state` keep their current values.
  void load_state(const StateDict& state);

 protected:
  bool training_ = true;
};

/// Runs sub-modules in order; backward in reverse order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a non-owning typed pointer for later access.
  template <typename T, typename... Args>
  T* emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  void append(std::unique_ptr<Module> m) { layers_.push_back(std::move(m)); }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;
  void set_training(bool training) override;

  std::size_t size() const { return layers_.size(); }
  Module& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

}  // namespace rt
