#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hpp"

namespace rt {

BatchNorm2d::BatchNorm2d(std::int64_t channels, std::string name, float eps,
                         float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  gamma_.name = name + ".gamma";
  gamma_.kind = ParamKind::kBnGamma;
  gamma_.value = Tensor::ones({channels});
  gamma_.grad = Tensor({channels});
  beta_.name = name + ".beta";
  beta_.kind = ParamKind::kBnBeta;
  beta_.value = Tensor({channels});
  beta_.grad = Tensor({channels});
  running_mean_ = Tensor({channels});
  running_var_ = Tensor::ones({channels});
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input " + x.shape_str());
  }
  const std::int64_t n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const std::int64_t m = n * h * w;  // reduction size per channel
  const std::int64_t hw = h * w;

  std::vector<float> mean(static_cast<std::size_t>(c), 0.0f);
  std::vector<float> var(static_cast<std::size_t>(c), 0.0f);
  forward_used_batch_stats_ = training_;
  if (training_) {
    // Each channel's statistics are independent; chunk the channel range
    // across the pool.
    parallel_for(c, [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t ch = begin; ch < end; ++ch) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
          const float* xp = x.data() + (i * c + ch) * hw;
          for (std::int64_t j = 0; j < hw; ++j) acc += xp[j];
        }
        const float mu = static_cast<float>(acc / static_cast<double>(m));
        mean[static_cast<std::size_t>(ch)] = mu;
        double vacc = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
          const float* xp = x.data() + (i * c + ch) * hw;
          for (std::int64_t j = 0; j < hw; ++j) {
            const double d = xp[j] - mu;
            vacc += d * d;
          }
        }
        var[static_cast<std::size_t>(ch)] =
            static_cast<float>(vacc / static_cast<double>(m));
      }
    });
    for (std::int64_t ch = 0; ch < c; ++ch) {
      running_mean_[ch] = (1.0f - momentum_) * running_mean_[ch] +
                          momentum_ * mean[static_cast<std::size_t>(ch)];
      running_var_[ch] = (1.0f - momentum_) * running_var_[ch] +
                         momentum_ * var[static_cast<std::size_t>(ch)];
    }
  } else {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      mean[static_cast<std::size_t>(ch)] = running_mean_[ch];
      var[static_cast<std::size_t>(ch)] = running_var_[ch];
    }
  }

  cached_inv_std_ = Tensor({c});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    cached_inv_std_[ch] =
        1.0f / std::sqrt(var[static_cast<std::size_t>(ch)] + eps_);
  }

  cached_xhat_ = Tensor({n, c, h, w});
  Tensor y({n, c, h, w});
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const std::int64_t ch = p % c;
      const float mu = mean[static_cast<std::size_t>(ch)];
      const float is = cached_inv_std_[ch];
      const float g = gamma_.value[ch];
      const float b = beta_.value[ch];
      const float* xp = x.data() + p * hw;
      float* hp = cached_xhat_.data() + p * hw;
      float* yp = y.data() + p * hw;
      for (std::int64_t j = 0; j < hw; ++j) {
        const float xh = (xp[j] - mu) * is;
        hp[j] = xh;
        yp[j] = g * xh + b;
      }
    }
  });
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) {
    throw std::logic_error("BatchNorm2d::backward before forward");
  }
  const std::int64_t n = grad_out.dim(0), c = channels_, h = grad_out.dim(2),
                     w = grad_out.dim(3);
  const std::int64_t hw = h * w;
  const std::int64_t m = n * hw;
  Tensor dx({n, c, h, w});

  // Channels are independent: each iteration only touches its own slice of
  // dx and its own gamma/beta grad entry.
  parallel_for(c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t ch = begin; ch < end; ++ch) {
      double sum_dy = 0.0, sum_dy_xhat = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* gp = grad_out.data() + (i * c + ch) * hw;
        const float* hp = cached_xhat_.data() + (i * c + ch) * hw;
        for (std::int64_t j = 0; j < hw; ++j) {
          sum_dy += gp[j];
          sum_dy_xhat += static_cast<double>(gp[j]) * hp[j];
        }
      }
      gamma_.grad[ch] += static_cast<float>(sum_dy_xhat);
      beta_.grad[ch] += static_cast<float>(sum_dy);

      const float g = gamma_.value[ch];
      const float is = cached_inv_std_[ch];
      if (forward_used_batch_stats_) {
        const float k1 = static_cast<float>(sum_dy / static_cast<double>(m));
        const float k2 =
            static_cast<float>(sum_dy_xhat / static_cast<double>(m));
        for (std::int64_t i = 0; i < n; ++i) {
          const float* gp = grad_out.data() + (i * c + ch) * hw;
          const float* hp = cached_xhat_.data() + (i * c + ch) * hw;
          float* dp = dx.data() + (i * c + ch) * hw;
          for (std::int64_t j = 0; j < hw; ++j) {
            dp[j] = g * is * (gp[j] - k1 - hp[j] * k2);
          }
        }
      } else {
        // Frozen statistics: y = g * (x - mu) * is + b is affine in x.
        for (std::int64_t i = 0; i < n; ++i) {
          const float* gp = grad_out.data() + (i * c + ch) * hw;
          float* dp = dx.data() + (i * c + ch) * hw;
          for (std::int64_t j = 0; j < hw; ++j) dp[j] = g * is * gp[j];
        }
      }
    }
  });
  return dx;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_buffers(std::vector<NamedTensor>& out) {
  // Buffer names derive from the gamma parameter name (ends in ".gamma").
  const std::string base = gamma_.name.substr(0, gamma_.name.size() - 6);
  out.emplace_back(base + ".running_mean", &running_mean_);
  out.emplace_back(base + ".running_var", &running_var_);
}

}  // namespace rt
