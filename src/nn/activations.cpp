#include "nn/activations.hpp"

#include <cmath>

namespace rt {

Tensor relu_forward(const Tensor& x, Tensor& gate) {
  gate = Tensor(x.shape());
  Tensor y(x.shape());
  const float* xd = x.data();
  float* gd = gate.data();
  float* yd = y.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = xd[i] > 0.0f;
    gd[i] = pos ? 1.0f : 0.0f;
    yd[i] = pos ? xd[i] : 0.0f;
  }
  return y;
}

Tensor relu_backward(const Tensor& grad_out, const Tensor& gate) {
  Tensor g = grad_out;
  g.mul_(gate);
  return g;
}

Tensor ReLU::forward(const Tensor& x) { return relu_forward(x, cached_gate_); }

Tensor ReLU::backward(const Tensor& grad_out) {
  return relu_backward(grad_out, cached_gate_);
}

LeakyReLU::LeakyReLU(float slope) : slope_(slope) {}

Tensor LeakyReLU::forward(const Tensor& x) {
  cached_gate_ = Tensor(x.shape());
  Tensor y(x.shape());
  const float* xd = x.data();
  float* gd = cached_gate_.data();
  float* yd = y.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = xd[i] > 0.0f;
    gd[i] = pos ? 1.0f : slope_;
    yd[i] = xd[i] * gd[i];
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  g.mul_(cached_gate_);
  return g;
}

namespace {
constexpr float kInvSqrt2 = 0.70710678f;
constexpr float kInvSqrt2Pi = 0.39894228f;

inline float normal_cdf(float x) {
  return 0.5f * (1.0f + std::erf(x * kInvSqrt2));
}
inline float normal_pdf(float x) {
  return kInvSqrt2Pi * std::exp(-0.5f * x * x);
}
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Tensor GELU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    yd[i] = xd[i] * normal_cdf(xd[i]);
  }
  return y;
}

Tensor GELU::backward(const Tensor& grad_out) {
  Tensor g(grad_out.shape());
  const float* xd = cached_input_.data();
  const float* gout = grad_out.data();
  float* gd = g.data();
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    // d/dx [x Phi(x)] = Phi(x) + x phi(x).
    gd[i] = gout[i] * (normal_cdf(xd[i]) + xd[i] * normal_pdf(xd[i]));
  }
  return g;
}

Tensor SiLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y(x.shape());
  const float* xd = x.data();
  float* yd = y.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    yd[i] = xd[i] * sigmoid(xd[i]);
  }
  return y;
}

Tensor SiLU::backward(const Tensor& grad_out) {
  Tensor g(grad_out.shape());
  const float* xd = cached_input_.data();
  const float* gout = grad_out.data();
  float* gd = g.data();
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const float s = sigmoid(xd[i]);
    // d/dx [x s(x)] = s + x s (1 - s).
    gd[i] = gout[i] * (s + xd[i] * s * (1.0f - s));
  }
  return g;
}

}  // namespace rt
