#pragma once
// Fully connected layer y = x W^T + b for 2-D inputs (N, in).

#include <string>

#include "nn/module.hpp"

namespace rt {

class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, bool with_bias,
         Rng& rng, std::string name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }
  const Parameter* bias() const { return has_bias_ ? &bias_ : nullptr; }
  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  /// Re-initializes weights/bias in place (used when swapping the classifier
  /// head for a new downstream task) and drops any installed mask.
  void reset(Rng& rng);

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

}  // namespace rt
