#pragma once
// SGD with momentum / weight decay, mask-aware, plus LR schedules.

#include <memory>
#include <vector>

#include "nn/module.hpp"

namespace rt {

struct SgdConfig {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

/// Plain SGD with (heavy-ball) momentum and decoupled-from-loss L2 weight
/// decay added to the gradient, matching the paper's finetuning recipe.
///
/// Ticket invariant: before each update, gradients of masked-out weights are
/// zeroed; after each update, the mask is re-applied to the values. Pruned
/// weights therefore stay exactly zero through any amount of finetuning.
class Sgd {
 public:
  Sgd(std::vector<Parameter*> params, SgdConfig config);

  void step();
  void zero_grad();
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  std::vector<Parameter*> params_;
  SgdConfig config_;
  std::vector<Tensor> velocity_;
};

/// Learning-rate schedule interface: lr as a function of the 0-based epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr_at(int epoch) const = 0;
};

/// Piecewise-constant decay: lr = base * gamma^(#milestones passed).
/// Mirrors the paper's "decay by 0.1 at epochs 50 and 100" recipe.
class MultiStepLr : public LrSchedule {
 public:
  MultiStepLr(float base_lr, std::vector<int> milestones, float gamma = 0.1f);
  float lr_at(int epoch) const override;

 private:
  float base_lr_;
  std::vector<int> milestones_;
  float gamma_;
};

/// Cosine annealing from base_lr to min_lr over total_epochs.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float base_lr, int total_epochs, float min_lr = 0.0f);
  float lr_at(int epoch) const override;

 private:
  float base_lr_;
  int total_epochs_;
  float min_lr_;
};

/// Linear ramp from base_lr/warmup_epochs up to base_lr over the first
/// warmup_epochs, then delegates to the wrapped schedule (evaluated on the
/// unshifted epoch index, the common "warmup overlays the schedule" recipe).
class WarmupLr : public LrSchedule {
 public:
  WarmupLr(std::unique_ptr<LrSchedule> inner, int warmup_epochs);
  float lr_at(int epoch) const override;

 private:
  std::unique_ptr<LrSchedule> inner_;
  int warmup_epochs_;
};

struct AdamConfig {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  /// true: AdamW (decay applied directly to weights, decoupled from the
  /// moment estimates); false: classic Adam (decay added to the gradient).
  bool decoupled_weight_decay = true;
};

/// Adam / AdamW with bias-corrected moment estimates. Obeys the same ticket
/// invariant as Sgd: masked gradients are zeroed before the update and the
/// mask is re-applied to the values afterwards, so pruned weights stay
/// exactly zero. Used by LMP score training and available for finetuning.
class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config);

  void step();
  void zero_grad();
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  /// Number of steps taken so far (drives bias correction).
  std::int64_t steps_taken() const { return t_; }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_;  ///< first-moment estimates
  std::vector<Tensor> v_;  ///< second-moment estimates
  std::int64_t t_ = 0;
};

}  // namespace rt
