#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/gemm.hpp"

namespace rt {

Linear::Linear(std::int64_t in_features, std::int64_t out_features,
               bool with_bias, Rng& rng, std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(with_bias) {
  weight_.name = name + ".weight";
  weight_.kind = ParamKind::kLinearWeight;
  weight_.grad = Tensor({out_features, in_features});
  if (has_bias_) {
    bias_.name = name + ".bias";
    bias_.kind = ParamKind::kBias;
    bias_.value = Tensor({out_features});
    bias_.grad = Tensor({out_features});
  }
  reset(rng);
}

void Linear::reset(Rng& rng) {
  const float stddev =
      std::sqrt(2.0f / static_cast<float>(in_features_));
  weight_.value = Tensor::randn({out_features_, in_features_}, rng, stddev);
  weight_.clear_mask();
  if (has_bias_) bias_.value.fill_(0.0f);
}

Tensor Linear::forward(const Tensor& x) {
  if (x.ndim() != 2 || x.dim(1) != in_features_) {
    throw std::invalid_argument("Linear: bad input shape " + x.shape_str());
  }
  cached_input_ = x;
  const std::int64_t n = x.dim(0);
  // y = x W^T; the nt kernel skips output features whose weight row is
  // entirely masked out, which is the common case for drawn tickets.
  Tensor y({n, out_features_});
  gemm_nt(n, out_features_, in_features_, x.data(), weight_.value.data(),
          y.data());
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out_features_; ++j) {
        y.at(i, j) += bias_.value[j];
      }
    }
  }
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) {
    throw std::logic_error("Linear::backward before forward");
  }
  // dW += gout^T x ; dx = gout W ; db += column sums of gout.
  const std::int64_t n = grad_out.dim(0);
  gemm_tn(out_features_, in_features_, n, grad_out.data(),
          cached_input_.data(), weight_.grad.data(), {.accumulate = true});
  if (has_bias_) {
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < out_features_; ++j) {
        bias_.grad[j] += grad_out.at(i, j);
      }
    }
  }
  Tensor dx({n, in_features_});
  gemm_nn(n, in_features_, out_features_, grad_out.data(),
          weight_.value.data(), dx.data());
  return dx;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

}  // namespace rt
