#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hpp"

namespace rt {

void im2col(const Tensor& x, std::int64_t sample, const ConvGeometry& g,
            float* col) {
  const std::int64_t c_in = x.dim(1);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  im2col_plane(x.data() + sample * c_in * h * w, c_in, h, w, g, col);
}

void col2im_add(const float* col, std::int64_t sample, const ConvGeometry& g,
                Tensor& dx) {
  const std::int64_t c_in = dx.dim(1);
  const std::int64_t h = dx.dim(2);
  const std::int64_t w = dx.dim(3);
  col2im_plane_add(col, c_in, h, w, g,
                   dx.data() + sample * c_in * h * w);
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool with_bias, Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      geom_{kernel, stride, padding},
      has_bias_(with_bias) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_.name = name + ".weight";
  weight_.kind = ParamKind::kConvWeight;
  weight_.conv_in_channels = in_channels;
  weight_.conv_kernel = kernel;
  weight_.value = Tensor::randn({out_channels, fan_in}, rng, stddev);
  weight_.grad = Tensor({out_channels, fan_in});
  if (has_bias_) {
    bias_.name = name + ".bias";
    bias_.kind = ParamKind::kBias;
    bias_.value = Tensor({out_channels});
    bias_.grad = Tensor({out_channels});
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input shape " + x.shape_str());
  }
  cached_input_ = x;
  const std::int64_t n = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t oh = geom_.out_extent(h);
  const std::int64_t ow = geom_.out_extent(w);
  Tensor y({n, out_channels_, oh, ow});
  const float* wd = weight_.value.data();
  const float* xd = x.data();
  const float* bd = has_bias_ ? bias_.value.data() : nullptr;
  float* yd = y.data();
  const std::int64_t in_plane = in_channels_ * h * w;
  const std::int64_t out_plane = out_channels_ * oh * ow;

  // The weight is shared across the batch: count its zero fraction once so
  // every sample's kernel call dispatches without re-probing it, and when
  // the packed path will run, pack the weight panels once instead of once
  // per sample.
  ConvKernelOpts kopts;
  kopts.weight_zero_fraction =
      weight_zero_fraction(wd, weight_.value.numel());
  if (kopts.weight_zero_fraction < kConvSparseWeightFraction) {
    packed_weights_.pack(wd, out_channels_,
                         in_channels_ * geom_.kernel * geom_.kernel,
                         /*forward=*/true, /*dgrad=*/false);
    kopts.packed_weights = &packed_weights_;
  }
  // Batch-level tasks fill the machine when n >= lanes; below that, let the
  // kernels split their output tiles so the idle lanes steal intra-plane
  // work (bitwise-identical either way).
  kopts.parallel_tiles = n < Scheduler::current().num_threads();

  parallel_for(n, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin; i < end; ++i) {
      conv2d_forward_plane(xd + i * in_plane, in_channels_, h, w, geom_, wd,
                           out_channels_, yd + i * out_plane, bd,
                           /*relu=*/false, kopts);
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Conv2d::backward before forward");
  const std::int64_t n = x.dim(0);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  const std::int64_t oh = geom_.out_extent(h);
  const std::int64_t ow = geom_.out_extent(w);
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = in_channels_ * geom_.kernel * geom_.kernel;
  const std::int64_t in_plane = in_channels_ * h * w;

  Tensor dx({n, in_channels_, h, w});
  const float* wd = weight_.value.data();
  const float* gd = grad_out.data();
  const float* xd = x.data();

  ConvKernelOpts kopts;
  kopts.weight_zero_fraction =
      weight_zero_fraction(wd, weight_.value.numel());
  if (kopts.weight_zero_fraction < kConvSparseWeightFraction) {
    // dgrad consumes W^T panels; pre-pack them once for the whole batch.
    packed_weights_.pack(wd, out_channels_, ckk, /*forward=*/false,
                         /*dgrad=*/true);
    kopts.packed_weights = &packed_weights_;
  }
  const std::int64_t threads = Scheduler::current().num_threads();
  kopts.parallel_tiles = n < threads;

  // Weight-gradient accumulation: each slot owns a contiguous sample range
  // and a private partial, then the partials are combined with an
  // atomic-free pairwise tree — no mutex serializes the workers. The slot
  // count is fixed by the scheduler width (not by which worker ran what),
  // so the tree's summation order — and the resulting bits — are stable
  // under arbitrary stealing.
  const std::int64_t slots = std::min<std::int64_t>(threads, n);
  std::vector<std::vector<float>> dw_part(static_cast<std::size_t>(slots));
  std::vector<std::vector<float>> db_part(
      has_bias_ ? static_cast<std::size_t>(slots) : 0u);

  parallel_for(slots, [&](std::int64_t s0, std::int64_t s1) {
    for (std::int64_t s = s0; s < s1; ++s) {
      std::vector<float>& dw_local = dw_part[static_cast<std::size_t>(s)];
      dw_local.assign(static_cast<std::size_t>(out_channels_ * ckk), 0.0f);
      if (has_bias_) {
        db_part[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(out_channels_), 0.0f);
      }
      const std::int64_t begin = s * n / slots;
      const std::int64_t end = (s + 1) * n / slots;
      for (std::int64_t i = begin; i < end; ++i) {
        const float* gi = gd + i * out_channels_ * ohw;
        // dW += gout_i * col(x_i)^T, fused — no im2col materialization.
        conv2d_wgrad_plane(gi, xd + i * in_plane, in_channels_, h, w, geom_,
                           out_channels_, dw_local.data(), kopts);
        // dx_i += W^T * gout_i, computed in tiles scattered while cache-hot.
        conv2d_dgrad_plane(wd, out_channels_, gi, in_channels_, h, w, geom_,
                           dx.data() + i * in_plane, kopts);
        if (has_bias_) {
          float* db_local = db_part[static_cast<std::size_t>(s)].data();
          for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
            const float* grow = gi + oc * ohw;
            float acc = 0.0f;
            for (std::int64_t j = 0; j < ohw; ++j) acc += grow[j];
            db_local[oc] += acc;
          }
        }
      }
    }
  });

  // Pairwise tree: round r folds partial s+2^r into partial s. Each pair is
  // an independent buffer sum, so rounds parallelize without atomics.
  for (std::int64_t stride = 1; stride < slots; stride *= 2) {
    const std::int64_t pairs = (slots - stride + 2 * stride - 1) / (2 * stride);
    parallel_for(pairs, [&](std::int64_t p0, std::int64_t p1) {
      for (std::int64_t p = p0; p < p1; ++p) {
        const auto dst = static_cast<std::size_t>(p * 2 * stride);
        const auto src = dst + static_cast<std::size_t>(stride);
        if (src >= dw_part.size()) continue;
        float* d = dw_part[dst].data();
        const float* sbuf = dw_part[src].data();
        for (std::size_t j = 0; j < dw_part[dst].size(); ++j) d[j] += sbuf[j];
        if (has_bias_) {
          float* db = db_part[dst].data();
          const float* sb = db_part[src].data();
          for (std::size_t j = 0; j < db_part[dst].size(); ++j) {
            db[j] += sb[j];
          }
        }
      }
    });
  }

  // Fold the root partial into the parameter gradients, element-parallel.
  float* dw = weight_.grad.data();
  const float* root = dw_part[0].data();
  parallel_for(static_cast<std::int64_t>(dw_part[0].size()),
               [&](std::int64_t j0, std::int64_t j1) {
                 for (std::int64_t j = j0; j < j1; ++j) dw[j] += root[j];
               });
  if (has_bias_) {
    float* db = bias_.grad.data();
    for (std::size_t j = 0; j < db_part[0].size(); ++j) db[j] += db_part[0][j];
  }
  return dx;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

std::int64_t Conv2d::flops_per_sample(std::int64_t h, std::int64_t w) const {
  const std::int64_t oh = geom_.out_extent(h);
  const std::int64_t ow = geom_.out_extent(w);
  return 2 * out_channels_ * in_channels_ * geom_.kernel * geom_.kernel * oh *
         ow;
}

}  // namespace rt
