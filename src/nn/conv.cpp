#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/threadpool.hpp"
#include "linalg/gemm.hpp"

namespace rt {

void im2col(const Tensor& x, std::int64_t sample, const ConvGeometry& g,
            float* col) {
  const std::int64_t c_in = x.dim(1);
  const std::int64_t h = x.dim(2);
  const std::int64_t w = x.dim(3);
  im2col_plane(x.data() + sample * c_in * h * w, c_in, h, w, g, col);
}

void im2col_plane(const float* xd, std::int64_t c_in, std::int64_t h,
                  std::int64_t w, const ConvGeometry& g, float* col) {
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    const float* xc = xd + c * h * w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj, ++row) {
        float* out = col + row * oh * ow;
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          if (ii < 0 || ii >= h) {
            for (std::int64_t oj = 0; oj < ow; ++oj) out[oi * ow + oj] = 0.0f;
            continue;
          }
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride - g.padding + kj;
            out[oi * ow + oj] =
                (jj >= 0 && jj < w) ? xc[ii * w + jj] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im_add(const float* col, std::int64_t sample, const ConvGeometry& g,
                Tensor& dx) {
  const std::int64_t c_in = dx.dim(1);
  const std::int64_t h = dx.dim(2);
  const std::int64_t w = dx.dim(3);
  const std::int64_t oh = g.out_extent(h);
  const std::int64_t ow = g.out_extent(w);
  float* xd = dx.data() + sample * c_in * h * w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < c_in; ++c) {
    float* xc = xd + c * h * w;
    for (std::int64_t ki = 0; ki < g.kernel; ++ki) {
      for (std::int64_t kj = 0; kj < g.kernel; ++kj, ++row) {
        const float* in = col + row * oh * ow;
        for (std::int64_t oi = 0; oi < oh; ++oi) {
          const std::int64_t ii = oi * g.stride - g.padding + ki;
          if (ii < 0 || ii >= h) continue;
          for (std::int64_t oj = 0; oj < ow; ++oj) {
            const std::int64_t jj = oj * g.stride - g.padding + kj;
            if (jj >= 0 && jj < w) xc[ii * w + jj] += in[oi * ow + oj];
          }
        }
      }
    }
  }
}

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               bool with_bias, Rng& rng, std::string name)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      geom_{kernel, stride, padding},
      has_bias_(with_bias) {
  const std::int64_t fan_in = in_channels * kernel * kernel;
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  weight_.name = name + ".weight";
  weight_.kind = ParamKind::kConvWeight;
  weight_.conv_in_channels = in_channels;
  weight_.conv_kernel = kernel;
  weight_.value = Tensor::randn({out_channels, fan_in}, rng, stddev);
  weight_.grad = Tensor({out_channels, fan_in});
  if (has_bias_) {
    bias_.name = name + ".bias";
    bias_.kind = ParamKind::kBias;
    bias_.value = Tensor({out_channels});
    bias_.grad = Tensor({out_channels});
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input shape " + x.shape_str());
  }
  cached_input_ = x;
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = geom_.out_extent(x.dim(2));
  const std::int64_t ow = geom_.out_extent(x.dim(3));
  const std::int64_t ckk = in_channels_ * geom_.kernel * geom_.kernel;
  Tensor y({n, out_channels_, oh, ow});
  const float* wd = weight_.value.data();
  float* yd = y.data();
  const std::int64_t ohw = oh * ow;

  parallel_for(n, [&](std::int64_t begin, std::int64_t end) {
    std::vector<float> col(static_cast<std::size_t>(ckk * ohw));
    for (std::int64_t i = begin; i < end; ++i) {
      im2col(cached_input_, i, geom_, col.data());
      float* yi = yd + i * out_channels_ * ohw;
      gemm_nn_acc(out_channels_, ohw, ckk, wd, col.data(), yi);
      if (has_bias_) {
        for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
          const float b = bias_.value[oc];
          float* yrow = yi + oc * ohw;
          for (std::int64_t j = 0; j < ohw; ++j) yrow[j] += b;
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Conv2d::backward before forward");
  const std::int64_t n = x.dim(0);
  const std::int64_t oh = geom_.out_extent(x.dim(2));
  const std::int64_t ow = geom_.out_extent(x.dim(3));
  const std::int64_t ohw = oh * ow;
  const std::int64_t ckk = in_channels_ * geom_.kernel * geom_.kernel;

  Tensor dx({n, in_channels_, x.dim(2), x.dim(3)});
  const float* wd = weight_.value.data();
  const float* gd = grad_out.data();

  // Weight-gradient accumulation: each slot owns a contiguous sample range
  // and a private partial, then the partials are combined with an
  // atomic-free pairwise tree — no mutex serializes the workers.
  const std::int64_t slots =
      std::min<std::int64_t>(ThreadPool::instance().num_threads(), n);
  std::vector<std::vector<float>> dw_part(static_cast<std::size_t>(slots));
  std::vector<std::vector<float>> db_part(
      has_bias_ ? static_cast<std::size_t>(slots) : 0u);

  parallel_for(slots, [&](std::int64_t s0, std::int64_t s1) {
    std::vector<float> col(static_cast<std::size_t>(ckk * ohw));
    std::vector<float> dcol(static_cast<std::size_t>(ckk * ohw));
    for (std::int64_t s = s0; s < s1; ++s) {
      std::vector<float>& dw_local = dw_part[static_cast<std::size_t>(s)];
      dw_local.assign(static_cast<std::size_t>(out_channels_ * ckk), 0.0f);
      if (has_bias_) {
        db_part[static_cast<std::size_t>(s)].assign(
            static_cast<std::size_t>(out_channels_), 0.0f);
      }
      const std::int64_t begin = s * n / slots;
      const std::int64_t end = (s + 1) * n / slots;
      for (std::int64_t i = begin; i < end; ++i) {
        im2col(x, i, geom_, col.data());
        const float* gi = gd + i * out_channels_ * ohw;
        // dW += gout_i (out, ohw) * col^T (ohw, ckk)
        gemm_nt_acc(out_channels_, ckk, ohw, gi, col.data(), dw_local.data());
        // dcol = W^T (ckk, out) * gout_i (out, ohw)
        gemm_tn(ckk, ohw, out_channels_, wd, gi, dcol.data(),
                {.accumulate = false, .parallel = false});
        col2im_add(dcol.data(), i, geom_, dx);
        if (has_bias_) {
          float* db_local = db_part[static_cast<std::size_t>(s)].data();
          for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
            const float* grow = gi + oc * ohw;
            float acc = 0.0f;
            for (std::int64_t j = 0; j < ohw; ++j) acc += grow[j];
            db_local[oc] += acc;
          }
        }
      }
    }
  });

  // Pairwise tree: round r folds partial s+2^r into partial s. Each pair is
  // an independent buffer sum, so rounds parallelize without atomics.
  for (std::int64_t stride = 1; stride < slots; stride *= 2) {
    const std::int64_t pairs = (slots - stride + 2 * stride - 1) / (2 * stride);
    parallel_for(pairs, [&](std::int64_t p0, std::int64_t p1) {
      for (std::int64_t p = p0; p < p1; ++p) {
        const auto dst = static_cast<std::size_t>(p * 2 * stride);
        const auto src = dst + static_cast<std::size_t>(stride);
        if (src >= dw_part.size()) continue;
        float* d = dw_part[dst].data();
        const float* sbuf = dw_part[src].data();
        for (std::size_t j = 0; j < dw_part[dst].size(); ++j) d[j] += sbuf[j];
        if (has_bias_) {
          float* db = db_part[dst].data();
          const float* sb = db_part[src].data();
          for (std::size_t j = 0; j < db_part[dst].size(); ++j) {
            db[j] += sb[j];
          }
        }
      }
    });
  }

  // Fold the root partial into the parameter gradients, element-parallel.
  float* dw = weight_.grad.data();
  const float* root = dw_part[0].data();
  parallel_for(static_cast<std::int64_t>(dw_part[0].size()),
               [&](std::int64_t j0, std::int64_t j1) {
                 for (std::int64_t j = j0; j < j1; ++j) dw[j] += root[j];
               });
  if (has_bias_) {
    float* db = bias_.grad.data();
    for (std::size_t j = 0; j < db_part[0].size(); ++j) db[j] += db_part[0][j];
  }
  return dx;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

std::int64_t Conv2d::flops_per_sample(std::int64_t h, std::int64_t w) const {
  const std::int64_t oh = geom_.out_extent(h);
  const std::int64_t ow = geom_.out_extent(w);
  return 2 * out_channels_ * in_channels_ * geom_.kernel * geom_.kernel * oh *
         ow;
}

}  // namespace rt
