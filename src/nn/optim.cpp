#include "nn/optim.hpp"

#include <algorithm>
#include <cmath>

#include "common/numeric.hpp"

namespace rt {

Sgd::Sgd(std::vector<Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter* p = params_[pi];
    if (!p->trainable) continue;
    p->mask_grad();
    Tensor& v = velocity_[pi];
    float* vd = v.data();
    float* gd = p->grad.data();
    float* wd = p->value.data();
    const float wdcay = config_.weight_decay;
    const float mom = config_.momentum;
    const float lr = config_.lr;
    for (std::int64_t i = 0; i < v.numel(); ++i) {
      const float g = gd[i] + wdcay * wd[i];
      vd[i] = mom * vd[i] + g;
      wd[i] -= lr * vd[i];
    }
    p->apply_mask();
  }
}

void Sgd::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

MultiStepLr::MultiStepLr(float base_lr, std::vector<int> milestones,
                         float gamma)
    : base_lr_(base_lr), milestones_(std::move(milestones)), gamma_(gamma) {
  std::sort(milestones_.begin(), milestones_.end());
}

float MultiStepLr::lr_at(int epoch) const {
  float lr = base_lr_;
  for (int m : milestones_) {
    if (epoch >= m) lr *= gamma_;
  }
  return lr;
}

CosineLr::CosineLr(float base_lr, int total_epochs, float min_lr)
    : base_lr_(base_lr), total_epochs_(std::max(1, total_epochs)),
      min_lr_(min_lr) {}

float CosineLr::lr_at(int epoch) const {
  const float t = std::clamp(
      static_cast<float>(epoch) / static_cast<float>(total_epochs_), 0.0f,
      1.0f);
  const float cosv = 0.5f * (1.0f + std::cos(kPi * t));
  return min_lr_ + (base_lr_ - min_lr_) * cosv;
}

WarmupLr::WarmupLr(std::unique_ptr<LrSchedule> inner, int warmup_epochs)
    : inner_(std::move(inner)), warmup_epochs_(std::max(0, warmup_epochs)) {}

float WarmupLr::lr_at(int epoch) const {
  const float target = inner_->lr_at(epoch);
  if (epoch >= warmup_epochs_ || warmup_epochs_ == 0) return target;
  return target * static_cast<float>(epoch + 1) /
         static_cast<float>(warmup_epochs_);
}

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    Parameter* p = params_[pi];
    if (!p->trainable) continue;
    p->mask_grad();
    float* md = m_[pi].data();
    float* vd = v_[pi].data();
    float* gd = p->grad.data();
    float* wd = p->value.data();
    const float b1 = config_.beta1, b2 = config_.beta2;
    const float lr = config_.lr, eps = config_.eps;
    const float wdcay = config_.weight_decay;
    for (std::int64_t i = 0; i < p->value.numel(); ++i) {
      float g = gd[i];
      if (wdcay != 0.0f && !config_.decoupled_weight_decay) g += wdcay * wd[i];
      md[i] = b1 * md[i] + (1.0f - b1) * g;
      vd[i] = b2 * vd[i] + (1.0f - b2) * g * g;
      const float mhat = md[i] / bc1;
      const float vhat = vd[i] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps);
      if (wdcay != 0.0f && config_.decoupled_weight_decay) {
        update += wdcay * wd[i];
      }
      wd[i] -= lr * update;
    }
    p->apply_mask();
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

}  // namespace rt
