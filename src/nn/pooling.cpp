#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

#include "common/threadpool.hpp"

namespace rt {

// All four layers operate on disjoint (sample, channel) maps, so each
// parallel_for below partitions the flattened n*c map index; no two chunks
// touch the same output (or, for MaxPool2d::backward, the same input window).

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(2) % kernel_ != 0 || x.dim(3) % kernel_ != 0) {
    throw std::invalid_argument("MaxPool2d: bad input " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h / kernel_, ow = w / kernel_;
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const float* xp = x.data() + p * h * w;
      std::int64_t out_idx = p * oh * ow;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        for (std::int64_t oj = 0; oj < ow; ++oj, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ki = 0; ki < kernel_; ++ki) {
            for (std::int64_t kj = 0; kj < kernel_; ++kj) {
              const std::int64_t idx =
                  (oi * kernel_ + ki) * w + (oj * kernel_ + kj);
              if (xp[idx] > best) {
                best = xp[idx];
                best_idx = idx;
              }
            }
          }
          y[out_idx] = best;
          argmax_[static_cast<std::size_t>(out_idx)] = p * h * w + best_idx;
        }
      }
    }
  });
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (in_shape_.empty()) throw std::logic_error("MaxPool2d::backward order");
  Tensor dx(in_shape_);
  const std::int64_t n = in_shape_[0], c = in_shape_[1];
  const std::int64_t map_out = grad_out.numel() / (n * c);
  // Pooling windows are disjoint (stride == kernel), so scatter writes from
  // one map never alias another map's — chunking by map keeps this race-free.
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t i = begin * map_out; i < end * map_out; ++i) {
      dx[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
    }
  });
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  if (x.ndim() != 4) {
    throw std::invalid_argument("GlobalAvgPool: bad input " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const float* xp = x.data() + p * hw;
      float acc = 0.0f;
      for (std::int64_t j = 0; j < hw; ++j) acc += xp[j];
      y[p] = acc * inv;
    }
  });
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (in_shape_.empty()) throw std::logic_error("GlobalAvgPool::backward order");
  Tensor dx(in_shape_);
  const std::int64_t n = in_shape_[0], c = in_shape_[1],
                     hw = in_shape_[2] * in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const float g = grad_out[p] * inv;
      float* dp = dx.data() + p * hw;
      for (std::int64_t j = 0; j < hw; ++j) dp[j] = g;
    }
  });
  return dx;
}

Tensor NearestUpsample::forward(const Tensor& x) {
  if (x.ndim() != 4) {
    throw std::invalid_argument("NearestUpsample: bad input " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h * factor_, ow = w * factor_;
  Tensor y({n, c, oh, ow});
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const float* xp = x.data() + p * h * w;
      float* yp = y.data() + p * oh * ow;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        const float* xrow = xp + (oi / factor_) * w;
        for (std::int64_t oj = 0; oj < ow; ++oj) {
          yp[oi * ow + oj] = xrow[oj / factor_];
        }
      }
    }
  });
  return y;
}

Tensor NearestUpsample::backward(const Tensor& grad_out) {
  if (in_shape_.empty()) {
    throw std::logic_error("NearestUpsample::backward order");
  }
  Tensor dx(in_shape_);
  const std::int64_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                     w = in_shape_[3];
  const std::int64_t oh = h * factor_, ow = w * factor_;
  parallel_for(n * c, [&](std::int64_t begin, std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const float* gp = grad_out.data() + p * oh * ow;
      float* dp = dx.data() + p * h * w;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        float* drow = dp + (oi / factor_) * w;
        for (std::int64_t oj = 0; oj < ow; ++oj) {
          drow[oj / factor_] += gp[oi * ow + oj];
        }
      }
    }
  });
  return dx;
}

}  // namespace rt
