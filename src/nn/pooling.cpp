#include "nn/pooling.hpp"

#include <limits>
#include <stdexcept>

namespace rt {

Tensor MaxPool2d::forward(const Tensor& x) {
  if (x.ndim() != 4 || x.dim(2) % kernel_ != 0 || x.dim(3) % kernel_ != 0) {
    throw std::invalid_argument("MaxPool2d: bad input " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h / kernel_, ow = w / kernel_;
  Tensor y({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(y.numel()), 0);
  std::int64_t out_idx = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* xp = x.data() + (i * c + ch) * h * w;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        for (std::int64_t oj = 0; oj < ow; ++oj, ++out_idx) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ki = 0; ki < kernel_; ++ki) {
            for (std::int64_t kj = 0; kj < kernel_; ++kj) {
              const std::int64_t idx =
                  (oi * kernel_ + ki) * w + (oj * kernel_ + kj);
              if (xp[idx] > best) {
                best = xp[idx];
                best_idx = idx;
              }
            }
          }
          y[out_idx] = best;
          argmax_[static_cast<std::size_t>(out_idx)] =
              (i * c + ch) * h * w + best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (in_shape_.empty()) throw std::logic_error("MaxPool2d::backward order");
  Tensor dx(in_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    dx[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  if (x.ndim() != 4) {
    throw std::invalid_argument("GlobalAvgPool: bad input " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* xp = x.data() + (i * c + ch) * hw;
      float acc = 0.0f;
      for (std::int64_t j = 0; j < hw; ++j) acc += xp[j];
      y.at(i, ch) = acc * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (in_shape_.empty()) throw std::logic_error("GlobalAvgPool::backward order");
  Tensor dx(in_shape_);
  const std::int64_t n = in_shape_[0], c = in_shape_[1],
                     hw = in_shape_[2] * in_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(i, ch) * inv;
      float* dp = dx.data() + (i * c + ch) * hw;
      for (std::int64_t j = 0; j < hw; ++j) dp[j] = g;
    }
  }
  return dx;
}

Tensor NearestUpsample::forward(const Tensor& x) {
  if (x.ndim() != 4) {
    throw std::invalid_argument("NearestUpsample: bad input " + x.shape_str());
  }
  in_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = h * factor_, ow = w * factor_;
  Tensor y({n, c, oh, ow});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* xp = x.data() + (i * c + ch) * h * w;
      float* yp = y.data() + (i * c + ch) * oh * ow;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        const float* xrow = xp + (oi / factor_) * w;
        for (std::int64_t oj = 0; oj < ow; ++oj) {
          yp[oi * ow + oj] = xrow[oj / factor_];
        }
      }
    }
  }
  return y;
}

Tensor NearestUpsample::backward(const Tensor& grad_out) {
  if (in_shape_.empty()) {
    throw std::logic_error("NearestUpsample::backward order");
  }
  Tensor dx(in_shape_);
  const std::int64_t n = in_shape_[0], c = in_shape_[1], h = in_shape_[2],
                     w = in_shape_[3];
  const std::int64_t oh = h * factor_, ow = w * factor_;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* gp = grad_out.data() + (i * c + ch) * oh * ow;
      float* dp = dx.data() + (i * c + ch) * h * w;
      for (std::int64_t oi = 0; oi < oh; ++oi) {
        float* drow = dp + (oi / factor_) * w;
        for (std::int64_t oj = 0; oj < ow; ++oj) {
          drow[oj / factor_] += gp[oi * ow + oj];
        }
      }
    }
  }
  return dx;
}

}  // namespace rt
