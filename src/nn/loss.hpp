#pragma once
// Softmax cross-entropy losses (classification and dense prediction).

#include <vector>

#include "tensor/tensor.hpp"

namespace rt {

/// Loss value plus the gradient with respect to the logits, using mean
/// reduction over the batch (and pixels, for the dense variant).
struct LossResult {
  float loss = 0.0f;
  Tensor grad_logits;
};

/// Row-wise softmax of (N, C) logits (numerically stable).
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy of (N, C) logits against integer labels in [0, C).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

/// Label-smoothed cross-entropy: the target distribution puts 1 - smoothing
/// on the true class and smoothing/(C-1) on the rest. smoothing == 0 reduces
/// exactly to softmax_cross_entropy.
LossResult softmax_cross_entropy_smoothed(const Tensor& logits,
                                          const std::vector<int>& labels,
                                          float smoothing);

/// Both sides of the batch-mean KL divergence
///   KL(softmax(target_logits) || softmax(logits))
/// used by the TRADES robust objective. grad_target differentiates through
/// the *target* (clean) branch as well, which TRADES needs because the clean
/// logits are a function of the trained weights too.
struct KlResult {
  float loss = 0.0f;
  Tensor grad_target;  ///< dKL / d target_logits
  Tensor grad_logits;  ///< dKL / d logits
};

KlResult kl_divergence(const Tensor& target_logits, const Tensor& logits);

/// Pixel-wise mean cross-entropy of (N, C, H, W) logits against labels of
/// length N*H*W (row-major n, h, w). Label -1 marks ignored pixels.
LossResult softmax_cross_entropy_2d(const Tensor& logits,
                                    const std::vector<int>& labels);

/// Classification error helpers.
std::vector<int> argmax_rows(const Tensor& logits);
float accuracy(const Tensor& logits, const std::vector<int>& labels);

}  // namespace rt
