#pragma once
// Pointwise activations.

#include "nn/module.hpp"

namespace rt {

/// Rectified linear unit. Backward gates gradients by the forward sign.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  Tensor cached_gate_;  ///< 1 where x > 0
};

/// Functional helpers used by composite blocks that fuse residual-add + ReLU.
/// Returns y = max(x, 0) and writes the gate (1 where x > 0) into `gate`.
Tensor relu_forward(const Tensor& x, Tensor& gate);
/// Returns grad_out ⊙ gate.
Tensor relu_backward(const Tensor& grad_out, const Tensor& gate);

/// max(x, slope * x); slope in [0, 1).
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float slope = 0.01f);
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  float slope_;
  Tensor cached_gate_;  ///< 1 where x > 0, slope elsewhere
};

/// Exact Gaussian error linear unit: x * Phi(x) with Phi the standard normal
/// CDF (erf-based, not the tanh approximation).
class GELU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  Tensor cached_input_;
};

/// Sigmoid linear unit (swish): x * sigmoid(x).
class SiLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  Tensor cached_input_;
};

}  // namespace rt
