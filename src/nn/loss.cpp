#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rt {

Tensor softmax(const Tensor& logits) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument("softmax: (N, C) logits required");
  }
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor p({n, c});
  for (std::int64_t i = 0; i < n; ++i) {
    float m = logits.at(i, 0);
    for (std::int64_t j = 1; j < c; ++j) m = std::max(m, logits.at(i, j));
    float z = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) {
      const float e = std::exp(logits.at(i, j) - m);
      p.at(i, j) = e;
      z += e;
    }
    const float inv = 1.0f / z;
    for (std::int64_t j = 0; j < c; ++j) p.at(i, j) *= inv;
  }
  return p;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  }
  LossResult out;
  out.grad_logits = softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    }
    const float p = std::max(out.grad_logits.at(i, y), 1e-12f);
    loss -= std::log(p);
    out.grad_logits.at(i, y) -= 1.0f;
  }
  out.grad_logits.mul_(inv_n);
  out.loss = static_cast<float>(loss / static_cast<double>(n));
  return out;
}

LossResult softmax_cross_entropy_smoothed(const Tensor& logits,
                                          const std::vector<int>& labels,
                                          float smoothing) {
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != n) {
    throw std::invalid_argument("smoothed CE: label count mismatch");
  }
  if (smoothing < 0.0f || smoothing >= 1.0f) {
    throw std::invalid_argument("smoothed CE: smoothing must be in [0, 1)");
  }
  if (c < 2) throw std::invalid_argument("smoothed CE: need >= 2 classes");
  const float off = smoothing / static_cast<float>(c - 1);
  const float on = 1.0f - smoothing;
  LossResult out;
  out.grad_logits = softmax(logits);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    if (y < 0 || y >= c) {
      throw std::invalid_argument("smoothed CE: label out of range");
    }
    for (std::int64_t j = 0; j < c; ++j) {
      const float t = (j == y) ? on : off;
      const float p = std::max(out.grad_logits.at(i, j), 1e-12f);
      loss -= static_cast<double>(t) * std::log(p);
      out.grad_logits.at(i, j) -= t;
    }
  }
  out.grad_logits.mul_(1.0f / static_cast<float>(n));
  out.loss = static_cast<float>(loss / static_cast<double>(n));
  return out;
}

KlResult kl_divergence(const Tensor& target_logits, const Tensor& logits) {
  if (!target_logits.same_shape(logits) || logits.ndim() != 2) {
    throw std::invalid_argument("kl_divergence: matching (N, C) logits");
  }
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  const Tensor p = softmax(target_logits);  // target distribution
  const Tensor q = softmax(logits);
  KlResult out;
  out.grad_target = Tensor({n, c});
  out.grad_logits = Tensor({n, c});
  const float inv_n = 1.0f / static_cast<float>(n);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    // KL_i = sum_j p_ij (log p_ij - log q_ij).
    double kl = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      const float pj = std::max(p.at(i, j), 1e-12f);
      const float qj = std::max(q.at(i, j), 1e-12f);
      kl += static_cast<double>(pj) * (std::log(pj) - std::log(qj));
    }
    loss += kl;
    // d KL / d q-logits_k = q_k - p_k (same softmax-minus-target form as CE).
    // d KL / d p-logits_k = p_k * (log p_k - log q_k - KL_i).
    for (std::int64_t j = 0; j < c; ++j) {
      const float pj = std::max(p.at(i, j), 1e-12f);
      const float qj = std::max(q.at(i, j), 1e-12f);
      out.grad_logits.at(i, j) = (q.at(i, j) - p.at(i, j)) * inv_n;
      out.grad_target.at(i, j) =
          p.at(i, j) *
          (std::log(pj) - std::log(qj) - static_cast<float>(kl)) * inv_n;
    }
  }
  out.loss = static_cast<float>(loss / static_cast<double>(n));
  return out;
}

LossResult softmax_cross_entropy_2d(const Tensor& logits,
                                    const std::vector<int>& labels) {
  if (logits.ndim() != 4) {
    throw std::invalid_argument("softmax_cross_entropy_2d: (N,C,H,W) required");
  }
  const std::int64_t n = logits.dim(0), c = logits.dim(1), h = logits.dim(2),
                     w = logits.dim(3);
  const std::int64_t hw = h * w;
  if (static_cast<std::int64_t>(labels.size()) != n * hw) {
    throw std::invalid_argument("softmax_cross_entropy_2d: label count");
  }
  LossResult out;
  out.grad_logits = Tensor({n, c, h, w});
  double loss = 0.0;
  std::int64_t valid = 0;
  std::vector<float> probs(static_cast<std::size_t>(c));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t px = 0; px < hw; ++px) {
      const int y = labels[static_cast<std::size_t>(i * hw + px)];
      if (y < 0) continue;
      if (y >= c) {
        throw std::invalid_argument("softmax_cross_entropy_2d: label range");
      }
      float m = -std::numeric_limits<float>::infinity();
      for (std::int64_t ch = 0; ch < c; ++ch) {
        m = std::max(m, logits.data()[(i * c + ch) * hw + px]);
      }
      float z = 0.0f;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        probs[static_cast<std::size_t>(ch)] =
            std::exp(logits.data()[(i * c + ch) * hw + px] - m);
        z += probs[static_cast<std::size_t>(ch)];
      }
      const float inv = 1.0f / z;
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float p = probs[static_cast<std::size_t>(ch)] * inv;
        out.grad_logits.data()[(i * c + ch) * hw + px] =
            p - (ch == y ? 1.0f : 0.0f);
      }
      loss -= std::log(std::max(probs[static_cast<std::size_t>(y)] * inv,
                                1e-12f));
      ++valid;
    }
  }
  if (valid == 0) throw std::invalid_argument("no valid pixels in loss");
  out.grad_logits.mul_(1.0f / static_cast<float>(valid));
  out.loss = static_cast<float>(loss / static_cast<double>(valid));
  return out;
}

std::vector<int> argmax_rows(const Tensor& logits) {
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (logits.at(i, j) > logits.at(i, best)) best = j;
    }
    out[static_cast<std::size_t>(i)] = static_cast<int>(best);
  }
  return out;
}

float accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const auto pred = argmax_rows(logits);
  if (pred.size() != labels.size() || pred.empty()) {
    throw std::invalid_argument("accuracy: size mismatch");
  }
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(pred.size());
}

}  // namespace rt
