#pragma once
// 2-D convolution (NCHW) with full backward, running on the fused
// implicit-GEMM kernels in linalg/conv.hpp.
//
// Forward and backward parallelize over the batch dimension; each sample
// runs the plane kernels, so all convolution arithmetic (including the
// masked-weight tap fast path) lives in the linalg kernel layer. No
// per-sample im2col/col2im buffer is materialized on the training path —
// the per-batch weight zero fraction is counted once and passed down so the
// kernels pick the packed or tap path without re-probing per sample, and
// when the packed path will run, the weight panels are pre-packed once per
// batch (linalg::PackedWeights) instead of once per sample. When the batch
// has fewer samples than the scheduler has lanes, the kernels additionally
// split their output-column tiles into stealable subtasks, so batch-level
// and tile-level parallelism compose instead of leaving lanes idle.

#include <cstdint>
#include <memory>
#include <string>

#include "linalg/conv.hpp"
#include "nn/module.hpp"

namespace rt {

/// Expands one sample of x (N,C,H,W) into a (C*k*k, OH*OW) column buffer.
/// `col` must have C*k*k*OH*OW elements. Out-of-image taps read as zero.
/// Reference/tooling wrapper over linalg's im2col_plane; the training hot
/// path no longer calls it.
void im2col(const Tensor& x, std::int64_t sample, const ConvGeometry& g,
            float* col);

/// Scatter-adds a (C*k*k, OH*OW) column gradient back into dx (N,C,H,W) at
/// the given sample. Inverse (adjoint) of im2col.
void col2im_add(const float* col, std::int64_t sample, const ConvGeometry& g,
                Tensor& dx);

/// Convolution layer. Weight layout is (out_ch, in_ch*k*k); column index c
/// decodes as in_ch = c/(k*k), kernel row = (c%(k*k))/k, kernel col = c%k.
/// He-normal initialized. Bias optional (ResNet convs are bias-free).
class Conv2d : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels,
         std::int64_t kernel, std::int64_t stride, std::int64_t padding,
         bool with_bias, Rng& rng, std::string name);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter* bias() { return has_bias_ ? &bias_ : nullptr; }
  const Parameter* bias() const { return has_bias_ ? &bias_ : nullptr; }
  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  const ConvGeometry& geometry() const { return geom_; }

  /// Multiply-accumulate count for one sample at the given input size.
  std::int64_t flops_per_sample(std::int64_t h, std::int64_t w) const;

 private:
  std::int64_t in_channels_;
  std::int64_t out_channels_;
  ConvGeometry geom_;
  bool has_bias_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  /// Batch-shared weight panels, re-packed per forward/backward call (the
  /// weights change every optimizer step) but reused across every sample in
  /// the batch. Member rather than local so the buffers persist between
  /// steps instead of reallocating.
  PackedWeights packed_weights_;
};

}  // namespace rt
