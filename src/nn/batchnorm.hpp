#pragma once
// Batch normalization over NCHW activations with running statistics.

#include <string>

#include "nn/module.hpp"

namespace rt {

/// Standard BatchNorm2d. In training mode uses batch statistics and updates
/// running estimates; in eval mode uses the running estimates. The backward
/// pass matches the mode used by the last forward (PGD at eval time
/// differentiates through frozen statistics).
class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::int64_t channels, std::string name, float eps = 1e-5f,
              float momentum = 0.1f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<NamedTensor>& out) override;

  Parameter& gamma() { return gamma_; }
  const Parameter& gamma() const { return gamma_; }
  Parameter& beta() { return beta_; }
  const Parameter& beta() const { return beta_; }
  Tensor& running_mean() { return running_mean_; }
  const Tensor& running_mean() const { return running_mean_; }
  Tensor& running_var() { return running_var_; }
  const Tensor& running_var() const { return running_var_; }
  std::int64_t channels() const { return channels_; }
  float eps() const { return eps_; }

 private:
  std::int64_t channels_;
  float eps_;
  float momentum_;
  Parameter gamma_;
  Parameter beta_;
  Tensor running_mean_;
  Tensor running_var_;

  // Cached by forward for backward.
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  ///< (C)
  bool forward_used_batch_stats_ = false;
};

}  // namespace rt
