#include "nn/module.hpp"

#include <stdexcept>

namespace rt {

void Parameter::apply_mask() {
  if (has_mask()) value.mul_(mask);
}

void Parameter::mask_grad() {
  if (has_mask()) grad.mul_(mask);
}

void Parameter::set_mask(Tensor m) {
  if (!m.same_shape(value)) {
    throw std::invalid_argument("Parameter::set_mask: shape mismatch for " +
                                name);
  }
  mask = std::move(m);
  apply_mask();
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

std::int64_t Module::num_parameters() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

std::int64_t Module::num_unmasked_parameters() {
  std::int64_t n = 0;
  for (Parameter* p : parameters()) {
    if (p->has_mask()) {
      n += static_cast<std::int64_t>(p->mask.sum());
    } else {
      n += p->value.numel();
    }
  }
  return n;
}

StateDict Module::state_dict() {
  StateDict state;
  for (Parameter* p : parameters()) state[p->name] = p->value;
  std::vector<NamedTensor> buffers;
  collect_buffers(buffers);
  for (const auto& [name, tensor] : buffers) state[name] = *tensor;
  return state;
}

void Module::load_state(const StateDict& state) {
  std::vector<std::pair<std::string, Tensor*>> dests;
  for (Parameter* p : parameters()) dests.emplace_back(p->name, &p->value);
  std::vector<NamedTensor> buffers;
  collect_buffers(buffers);
  for (auto& b : buffers) dests.push_back(b);

  for (const auto& [name, tensor] : state) {
    bool found = false;
    for (auto& [dname, dtensor] : dests) {
      if (dname != name) continue;
      if (!dtensor->same_shape(tensor)) {
        throw std::invalid_argument("load_state: shape mismatch for " + name);
      }
      *dtensor = tensor;
      found = true;
      break;
    }
    if (!found) {
      throw std::invalid_argument("load_state: no destination for " + name);
    }
  }
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& layer : layers_) layer->collect_parameters(out);
}

void Sequential::collect_buffers(std::vector<NamedTensor>& out) {
  for (auto& layer : layers_) layer->collect_buffers(out);
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& layer : layers_) layer->set_training(training);
}

}  // namespace rt
