#pragma once
// Spatial pooling and upsampling layers.

#include "nn/module.hpp"

namespace rt {

/// Non-overlapping max pooling (kernel == stride, no padding). Input spatial
/// extents must be divisible by the kernel.
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(std::int64_t kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  std::int64_t kernel_;
  std::vector<std::int64_t> argmax_;  ///< flat input index per output element
  std::vector<std::int64_t> in_shape_;
};

/// Global average pooling: (N, C, H, W) -> (N, C).
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  std::vector<std::int64_t> in_shape_;
};

/// Nearest-neighbour upsampling by an integer factor; backward sum-pools.
class NearestUpsample : public Module {
 public:
  explicit NearestUpsample(std::int64_t factor) : factor_(factor) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>&) override {}

 private:
  std::int64_t factor_;
  std::vector<std::int64_t> in_shape_;
};

}  // namespace rt
