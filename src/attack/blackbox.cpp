#include "attack/blackbox.hpp"

#include <algorithm>
#include <cmath>

#include "nn/loss.hpp"

namespace rt {

namespace {

/// Per-sample margin loss: logit of true class minus best other logit.
/// Lower is worse for the classifier (negative = misclassified).
std::vector<float> margins(Module& model, const Tensor& x,
                           const std::vector<int>& y) {
  const Tensor logits = model.forward(x);
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  std::vector<float> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const int yi = y[static_cast<std::size_t>(i)];
    float best_other = -std::numeric_limits<float>::infinity();
    for (std::int64_t j = 0; j < c; ++j) {
      if (j != yi) best_other = std::max(best_other, logits.at(i, j));
    }
    out[static_cast<std::size_t>(i)] = logits.at(i, yi) - best_other;
  }
  return out;
}

class EvalGuard {
 public:
  explicit EvalGuard(Module& m) : model_(m), was_training_(m.training()) {
    model_.set_training(false);
  }
  ~EvalGuard() { model_.set_training(was_training_); }
  EvalGuard(const EvalGuard&) = delete;
  EvalGuard& operator=(const EvalGuard&) = delete;

 private:
  Module& model_;
  bool was_training_;
};

}  // namespace

Tensor square_attack(Module& model, const Tensor& x, const std::vector<int>& y,
                     const SquareAttackConfig& config, Rng& rng) {
  const EvalGuard guard(model);
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);

  // Vertical-stripe initialization (as in the original attack).
  Tensor adv = x;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t col = 0; col < w; ++col) {
        const float delta =
            rng.bernoulli(0.5f) ? config.epsilon : -config.epsilon;
        for (std::int64_t row = 0; row < h; ++row) {
          adv.at(i, ch, row, col) += delta;
        }
      }
    }
  }
  adv.clamp_(0.0f, 1.0f);
  std::vector<float> best = margins(model, adv, y);

  for (int q = 0; q < config.queries; ++q) {
    // Square side shrinks over the query budget.
    const float progress =
        static_cast<float>(q) / std::max(1, config.queries - 1);
    const auto side = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::round(
               config.initial_fraction * (1.0f - progress) *
               static_cast<float>(std::min(h, w)))));
    Tensor proposal = adv;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::int64_t top =
          rng.next_below(static_cast<std::uint32_t>(h - side + 1));
      const std::int64_t left =
          rng.next_below(static_cast<std::uint32_t>(w - side + 1));
      for (std::int64_t ch = 0; ch < c; ++ch) {
        const float delta =
            rng.bernoulli(0.5f) ? config.epsilon : -config.epsilon;
        for (std::int64_t dy = 0; dy < side; ++dy) {
          for (std::int64_t dx = 0; dx < side; ++dx) {
            // Re-anchor to the clean pixel so the ball constraint holds.
            proposal.at(i, ch, top + dy, left + dx) =
                x.at(i, ch, top + dy, left + dx) + delta;
          }
        }
      }
    }
    proposal.clamp_(0.0f, 1.0f);
    const std::vector<float> cand = margins(model, proposal, y);
    // Keep per-sample improvements (margin decreased).
    for (std::int64_t i = 0; i < n; ++i) {
      if (cand[static_cast<std::size_t>(i)] <
          best[static_cast<std::size_t>(i)]) {
        best[static_cast<std::size_t>(i)] = cand[static_cast<std::size_t>(i)];
        for (std::int64_t ch = 0; ch < c; ++ch) {
          for (std::int64_t row = 0; row < h; ++row) {
            for (std::int64_t col = 0; col < w; ++col) {
              adv.at(i, ch, row, col) = proposal.at(i, ch, row, col);
            }
          }
        }
      }
    }
  }
  return adv;
}

Tensor momentum_pgd_attack(Module& model, const Tensor& x,
                           const std::vector<int>& y,
                           const MomentumPgdConfig& config, Rng& rng) {
  (void)rng;
  const bool was_training = model.training();
  model.set_training(false);
  Tensor adv = x;
  Tensor momentum(x.shape());
  for (int step = 0; step < config.steps; ++step) {
    const Tensor logits = model.forward(adv);
    const LossResult loss = softmax_cross_entropy(logits, y);
    Tensor g = model.backward(loss.grad_logits);
    // Normalize by the L1 norm per sample (MI-FGSM) and accumulate.
    const std::int64_t per = g.numel() / g.dim(0);
    for (std::int64_t i = 0; i < g.dim(0); ++i) {
      double l1 = 0.0;
      for (std::int64_t j = 0; j < per; ++j) {
        l1 += std::fabs(g[i * per + j]);
      }
      const float inv = l1 > 0.0 ? static_cast<float>(per / l1) : 0.0f;
      for (std::int64_t j = 0; j < per; ++j) {
        momentum[i * per + j] =
            config.decay * momentum[i * per + j] + g[i * per + j] * inv;
      }
    }
    Tensor dir = momentum;
    dir.sign_();
    adv.axpy_(config.step_size, dir);
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      const float lo = x[i] - config.epsilon;
      const float hi = x[i] + config.epsilon;
      adv[i] = std::clamp(adv[i], lo, hi);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  model.zero_grad();
  model.set_training(was_training);
  return adv;
}

Tensor targeted_pgd_attack(Module& model, const Tensor& x,
                           const std::vector<int>& targets,
                           const AttackConfig& config, Rng& rng) {
  const bool was_training = model.training();
  model.set_training(false);
  Tensor adv = x;
  if (config.random_start) {
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      adv[i] += rng.uniform(-config.epsilon, config.epsilon);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  for (int step = 0; step < config.steps; ++step) {
    const Tensor logits = model.forward(adv);
    const LossResult loss = softmax_cross_entropy(logits, targets);
    Tensor g = model.backward(loss.grad_logits);
    g.sign_();
    adv.axpy_(-config.step_size, g);  // descend towards the target class
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      const float lo = x[i] - config.epsilon;
      const float hi = x[i] + config.epsilon;
      adv[i] = std::clamp(adv[i], lo, hi);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  model.zero_grad();
  model.set_training(was_training);
  return adv;
}

}  // namespace rt
