#pragma once
// Randomized-smoothing prediction and certification (Cohen et al. [3]).
//
// The paper uses randomized-smoothing-style Gaussian training as the
// alternative robust pretraining scheme (Fig. 6). This module completes the
// technique: the smoothed classifier g(x) = argmax_c P(f(x + N(0, s^2)) = c)
// with Monte-Carlo prediction and a certified L2 radius derived from a
// lower confidence bound on the top-class probability.

#include <vector>

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace rt {

struct SmoothingConfig {
  float sigma = 0.12f;   ///< noise level (should match training sigma)
  int samples = 64;      ///< Monte-Carlo votes per input
  float alpha = 0.05f;   ///< 1 - confidence of the certificate
};

/// Result of certifying one input.
struct CertifiedPrediction {
  int predicted_class = -1;  ///< -1 = abstain (no class is confidently top)
  float radius = 0.0f;       ///< certified L2 radius (0 when abstaining)
  float top_probability_lower_bound = 0.0f;
};

/// Monte-Carlo prediction of the smoothed classifier for a batch (N,3,H,W).
/// Returns the majority-vote class per sample.
std::vector<int> smoothed_predict(Module& model, const Tensor& x,
                                  const SmoothingConfig& config, Rng& rng);

/// Certifies each sample: predicted class, lower confidence bound on its
/// vote probability, and the certified radius sigma * Phi^{-1}(p_lower).
/// Abstains (class -1) when p_lower <= 0.5.
std::vector<CertifiedPrediction> smoothed_certify(Module& model,
                                                  const Tensor& x,
                                                  const SmoothingConfig& config,
                                                  Rng& rng);

/// One-sided lower confidence bound on a binomial proportion at level
/// 1 - alpha (Wilson score bound; exposed for testing).
double binomial_lower_bound(int successes, int trials, float alpha);

/// Standard normal inverse CDF (Acklam's rational approximation; exposed
/// for testing).
double normal_quantile(double p);

}  // namespace rt
