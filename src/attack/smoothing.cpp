#include "attack/smoothing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "attack/attack.hpp"
#include "nn/loss.hpp"

namespace rt {

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normal_quantile: p in (0,1) required");
  }
  // Acklam's approximation, |relative error| < 1.15e-9.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double binomial_lower_bound(int successes, int trials, float alpha) {
  if (trials <= 0 || successes < 0 || successes > trials) {
    throw std::invalid_argument("binomial_lower_bound: bad counts");
  }
  if (successes == 0) return 0.0;
  // One-sided Wilson score interval at level 1 - alpha.
  const double z = normal_quantile(1.0 - static_cast<double>(alpha));
  const double n = trials;
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double centre = phat + z2 / (2.0 * n);
  const double spread =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n));
  return std::max(0.0, (centre - spread) / (1.0 + z2 / n));
}

namespace {

/// Per-sample vote histograms under Gaussian noise.
std::vector<std::vector<int>> vote(Module& model, const Tensor& x,
                                   const SmoothingConfig& config, Rng& rng) {
  const bool was_training = model.training();
  model.set_training(false);
  const std::int64_t n = x.dim(0);
  std::vector<std::vector<int>> counts(static_cast<std::size_t>(n));
  for (int s = 0; s < config.samples; ++s) {
    const Tensor noisy = gaussian_augment(x, config.sigma, rng);
    const Tensor logits = model.forward(noisy);
    const auto pred = argmax_rows(logits);
    const auto classes = static_cast<std::size_t>(logits.dim(1));
    for (std::int64_t i = 0; i < n; ++i) {
      auto& hist = counts[static_cast<std::size_t>(i)];
      if (hist.empty()) hist.assign(classes, 0);
      ++hist[static_cast<std::size_t>(pred[static_cast<std::size_t>(i)])];
    }
  }
  model.set_training(was_training);
  return counts;
}

}  // namespace

std::vector<int> smoothed_predict(Module& model, const Tensor& x,
                                  const SmoothingConfig& config, Rng& rng) {
  const auto counts = vote(model, x, config, rng);
  std::vector<int> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<int>(
        std::max_element(counts[i].begin(), counts[i].end()) -
        counts[i].begin());
  }
  return out;
}

std::vector<CertifiedPrediction> smoothed_certify(Module& model,
                                                  const Tensor& x,
                                                  const SmoothingConfig& config,
                                                  Rng& rng) {
  const auto counts = vote(model, x, config, rng);
  std::vector<CertifiedPrediction> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto top_it =
        std::max_element(counts[i].begin(), counts[i].end());
    const int top_class = static_cast<int>(top_it - counts[i].begin());
    const double p_lower =
        binomial_lower_bound(*top_it, config.samples, config.alpha);
    CertifiedPrediction& cp = out[i];
    cp.top_probability_lower_bound = static_cast<float>(p_lower);
    if (p_lower > 0.5) {
      cp.predicted_class = top_class;
      cp.radius = static_cast<float>(
          config.sigma * normal_quantile(p_lower));
    }
  }
  return out;
}

}  // namespace rt
