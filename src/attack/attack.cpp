#include "attack/attack.hpp"

#include "nn/loss.hpp"

namespace rt {

namespace {

/// Computes dL/dx for cross-entropy at the current point.
Tensor input_gradient(Module& model, const Tensor& x,
                      const std::vector<int>& y) {
  const Tensor logits = model.forward(x);
  const LossResult loss = softmax_cross_entropy(logits, y);
  return model.backward(loss.grad_logits);
}

class EvalModeGuard {
 public:
  explicit EvalModeGuard(Module& m) : model_(m), was_training_(m.training()) {
    model_.set_training(false);
  }
  ~EvalModeGuard() {
    model_.set_training(was_training_);
    model_.zero_grad();  // attack gradients must not leak into training
  }
  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  Module& model_;
  bool was_training_;
};

}  // namespace

Tensor pgd_attack(Module& model, const Tensor& x, const std::vector<int>& y,
                  const AttackConfig& config, Rng& rng) {
  const EvalModeGuard guard(model);
  Tensor adv = x;
  if (config.random_start) {
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      adv[i] += rng.uniform(-config.epsilon, config.epsilon);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  for (int step = 0; step < config.steps; ++step) {
    Tensor g = input_gradient(model, adv, y);
    g.sign_();
    adv.axpy_(config.step_size, g);
    // Project back into the eps ball around x, then into valid pixel range.
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      const float lo = x[i] - config.epsilon;
      const float hi = x[i] + config.epsilon;
      adv[i] = adv[i] < lo ? lo : (adv[i] > hi ? hi : adv[i]);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  return adv;
}

Tensor fgsm_attack(Module& model, const Tensor& x, const std::vector<int>& y,
                   float epsilon) {
  const EvalModeGuard guard(model);
  Tensor g = input_gradient(model, x, y);
  g.sign_();
  Tensor adv = x;
  adv.axpy_(epsilon, g);
  adv.clamp_(0.0f, 1.0f);
  return adv;
}

Tensor random_noise_attack(const Tensor& x, float epsilon, Rng& rng) {
  Tensor adv = x;
  for (std::int64_t i = 0; i < adv.numel(); ++i) {
    adv[i] += epsilon * (rng.bernoulli(0.5f) ? 1.0f : -1.0f);
  }
  adv.clamp_(0.0f, 1.0f);
  return adv;
}

Tensor gaussian_augment(const Tensor& x, float sigma, Rng& rng) {
  Tensor out = x;
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    out[i] += rng.normal(0.0f, sigma);
  }
  out.clamp_(0.0f, 1.0f);
  return out;
}

}  // namespace rt
