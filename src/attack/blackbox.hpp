#pragma once
// Black-box and enhanced white-box attacks.
//
// The paper's threat-model discussion cites query-based black-box attacks
// (Andriushchenko et al., "Square Attack" [1]) alongside white-box PGD.
// This module provides a square-attack-style random-search adversary (no
// gradients, score-based), a momentum-PGD variant (MI-FGSM), and targeted
// PGD — used by the attack-strength ablation and available to users for
// robustness audits of drawn tickets.

#include <vector>

#include "attack/attack.hpp"
#include "common/rng.hpp"
#include "nn/module.hpp"

namespace rt {

struct SquareAttackConfig {
  float epsilon = 0.08f;
  int queries = 200;         ///< forward passes per batch
  float initial_fraction = 0.3f;  ///< initial square side as fraction of image
};

/// Score-based random-search attack: proposes eps-magnitude square patches
/// and keeps them when the margin loss increases. Only uses forward passes
/// (no gradients), so it also works on models with masked/quantized
/// internals. Returns adversarial examples within the L-inf ball.
Tensor square_attack(Module& model, const Tensor& x, const std::vector<int>& y,
                     const SquareAttackConfig& config, Rng& rng);

struct MomentumPgdConfig {
  float epsilon = 0.08f;
  float step_size = 0.02f;
  int steps = 10;
  float decay = 1.0f;  ///< momentum accumulation factor (mu in MI-FGSM)
};

/// Momentum-accumulated PGD (MI-FGSM): stabilizes the update direction and
/// typically transfers better across models than vanilla PGD.
Tensor momentum_pgd_attack(Module& model, const Tensor& x,
                           const std::vector<int>& y,
                           const MomentumPgdConfig& config, Rng& rng);

/// Targeted PGD: minimizes the loss towards `targets` instead of maximizing
/// it away from the labels. Useful for worst-case class-confusion audits.
Tensor targeted_pgd_attack(Module& model, const Tensor& x,
                           const std::vector<int>& targets,
                           const AttackConfig& config, Rng& rng);

}  // namespace rt
