#include "attack/trades.hpp"

#include "nn/loss.hpp"

namespace rt {

namespace {

class EvalModeGuard {
 public:
  explicit EvalModeGuard(Module& m) : model_(m), was_training_(m.training()) {
    model_.set_training(false);
  }
  ~EvalModeGuard() {
    model_.set_training(was_training_);
    model_.zero_grad();
  }
  EvalModeGuard(const EvalModeGuard&) = delete;
  EvalModeGuard& operator=(const EvalModeGuard&) = delete;

 private:
  Module& model_;
  bool was_training_;
};

}  // namespace

Tensor trades_attack(Module& model, const Tensor& x, const AttackConfig& config,
                     Rng& rng) {
  const EvalModeGuard guard(model);
  // The clean logits are the (fixed) target distribution of the KL.
  const Tensor clean_logits = model.forward(x);

  Tensor adv = x;
  if (config.random_start) {
    // TRADES initializes with a small Gaussian start; scaled to the budget.
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      adv[i] += rng.normal(0.0f, 0.25f * config.epsilon);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  for (int step = 0; step < config.steps; ++step) {
    const Tensor logits = model.forward(adv);
    const KlResult kl = kl_divergence(clean_logits, logits);
    Tensor g = model.backward(kl.grad_logits);
    g.sign_();
    adv.axpy_(config.step_size, g);
    for (std::int64_t i = 0; i < adv.numel(); ++i) {
      const float lo = x[i] - config.epsilon;
      const float hi = x[i] + config.epsilon;
      adv[i] = adv[i] < lo ? lo : (adv[i] > hi ? hi : adv[i]);
    }
    adv.clamp_(0.0f, 1.0f);
  }
  return adv;
}

TradesStepResult trades_step(Module& model, const Tensor& x,
                             const std::vector<int>& y,
                             const TradesConfig& config, Rng& rng) {
  const Tensor adv = trades_attack(model, x, config.attack, rng);

  model.set_training(true);
  // Two branches share the weights but the layer caches hold only one
  // forward at a time, so: forward clean (copy logits), forward+backward the
  // adversarial branch, then re-forward clean and backward its combined
  // gradient. Parameter gradients accumulate across the two backwards.
  const Tensor clean_logits = model.forward(x);
  const Tensor adv_logits = model.forward(adv);

  const LossResult ce = softmax_cross_entropy(clean_logits, y);
  const KlResult kl = kl_divergence(clean_logits, adv_logits);

  Tensor adv_grad = kl.grad_logits;
  adv_grad.mul_(config.beta);
  model.backward(adv_grad);  // caches currently hold the adv forward

  model.forward(x);  // refresh caches for the clean branch
  Tensor clean_grad = ce.grad_logits;
  clean_grad.axpy_(config.beta, kl.grad_target);
  model.backward(clean_grad);

  TradesStepResult out;
  out.loss = ce.loss + config.beta * kl.loss;
  out.clean_logits = clean_logits;
  return out;
}

Tensor FreePerturbation::apply(const Tensor& x) {
  if (delta_.empty() || !delta_.same_shape(x)) {
    delta_ = Tensor(x.shape());
  }
  Tensor out = x;
  out.add_(delta_);
  out.clamp_(0.0f, 1.0f);
  return out;
}

void FreePerturbation::update(const Tensor& input_grad) {
  if (delta_.empty() || !delta_.same_shape(input_grad)) return;
  Tensor step = input_grad;
  step.sign_();
  // Full-epsilon ascent step, as in the reference Free-AT implementation.
  delta_.axpy_(epsilon_, step);
  delta_.clamp_(-epsilon_, epsilon_);
}

}  // namespace rt
