#pragma once
// L-infinity adversarial attacks (FGSM, PGD) and Gaussian augmentation.
//
// PGD (Madry et al. [16]) is the workhorse: it is both the robust
// pretraining objective (inner maximization of Eq. 1) and the evaluation
// attack behind Adv-Acc in Fig. 8 / Tab. I. Randomized-smoothing-style
// Gaussian augmentation [3] is the alternative robustification of Fig. 6.

#include <vector>

#include "common/rng.hpp"
#include "nn/module.hpp"

namespace rt {

struct AttackConfig {
  float epsilon = 0.08f;    ///< L-inf perturbation budget (images in [0,1])
  float step_size = 0.02f;  ///< PGD step
  int steps = 7;            ///< PGD iterations
  bool random_start = true; ///< uniform init inside the ball
};

/// Multi-step PGD on the cross-entropy loss. The model is put in eval mode
/// during generation (so batch-norm statistics are neither polluted nor
/// recomputed per step) and restored afterwards; accumulated parameter
/// gradients are cleared before returning. Output stays in [0,1].
Tensor pgd_attack(Module& model, const Tensor& x, const std::vector<int>& y,
                  const AttackConfig& config, Rng& rng);

/// Single-step FGSM: x + eps * sign(grad_x CE). Same mode handling as PGD.
Tensor fgsm_attack(Module& model, const Tensor& x, const std::vector<int>& y,
                   float epsilon);

/// Uniform random perturbation in the eps ball (sanity baseline attack).
Tensor random_noise_attack(const Tensor& x, float epsilon, Rng& rng);

/// Additive Gaussian noise, clamped to [0,1] (randomized-smoothing training).
Tensor gaussian_augment(const Tensor& x, float sigma, Rng& rng);

}  // namespace rt
