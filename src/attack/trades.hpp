#pragma once
// TRADES robust training objective (Zhang et al., ICML'19) and
// "free" adversarial training (Shafahi et al. [20]).
//
// The paper robustifies pretraining with PGD adversarial training by default
// and randomized smoothing as one alternative (Fig. 6). TRADES and Free-AT
// extend that comparison: TRADES trades off the natural-accuracy and
// boundary-error terms explicitly,
//   min_theta  CE(f(x), y) + beta * KL(f(x) || f(x')),
//   x' = argmax_{||d||_inf <= eps} KL(f(x) || f(x + d)),
// while Free-AT recycles the input gradient of each training step to update a
// persistent perturbation, getting robustness at roughly natural-training
// cost (the "amortized cost" angle the paper's Sec. III-D raises).

#include <vector>

#include "attack/attack.hpp"
#include "nn/module.hpp"

namespace rt {

struct TradesConfig {
  float beta = 4.0f;     ///< weight of the KL robustness term
  AttackConfig attack;   ///< inner-maximization budget
};

/// Inner maximization of TRADES: PGD on KL(p(x) || p(x')) wrt x'. The model
/// is run in eval mode and parameter gradients are cleared afterwards, like
/// pgd_attack.
Tensor trades_attack(Module& model, const Tensor& x, const AttackConfig& config,
                     Rng& rng);

/// One TRADES training step on a minibatch: generates x', then accumulates
/// the parameter gradients of CE(f(x), y) + beta * KL(f(x) || f(x')) into the
/// model (train mode; caller zero_grads before and steps the optimizer
/// after). Returns the combined loss and the clean logits (for train-accuracy
/// bookkeeping).
struct TradesStepResult {
  float loss = 0.0f;
  Tensor clean_logits;
};

TradesStepResult trades_step(Module& model, const Tensor& x,
                             const std::vector<int>& y,
                             const TradesConfig& config, Rng& rng);

/// Persistent-perturbation state for Free-AT; one instance per training run.
class FreePerturbation {
 public:
  explicit FreePerturbation(float epsilon) : epsilon_(epsilon) {}

  /// Returns x + delta (clamped to [0,1]), resizing delta (to zeros) when the
  /// batch shape changes.
  Tensor apply(const Tensor& x);

  /// Ascends delta with the sign of the input gradient from the last
  /// backward pass and re-projects onto the eps ball.
  void update(const Tensor& input_grad);

  float epsilon() const { return epsilon_; }
  const Tensor& delta() const { return delta_; }

 private:
  float epsilon_;
  Tensor delta_;
};

}  // namespace rt
