#include "net/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/audit.hpp"

namespace rt {
namespace net {

namespace {

/// Reads exactly `n` bytes unless the peer closes or the socket errors.
/// Returns the byte count actually read (n on success, less on EOF mid-way,
/// 0 on EOF at a frame boundary) or -1 on a socket error.
std::ptrdiff_t read_full(int fd, std::uint8_t* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) break;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(r);
  }
  return static_cast<std::ptrdiff_t>(got);
}

/// Writes all of `buf`; false when the peer is gone. MSG_NOSIGNAL keeps a
/// dead peer from killing the process with SIGPIPE.
bool write_full(int fd, const std::uint8_t* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

void set_nodelay(int fd) {
  // Frames are small and latency-bound; Nagle would serialize pipelined
  // requests into 40ms clumps.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::vector<std::uint8_t> text_body(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// InferenceServer
// ---------------------------------------------------------------------------

/// One accepted connection: a reader thread decoding + dispatching frames
/// and a writer thread streaming responses back in arrival order. The
/// response queue is the only shared state; `done_threads` lets the acceptor
/// reap a connection whose both loops have exited.
struct InferenceServer::Connection {
  int fd = -1;
  std::thread reader;
  std::thread writer;

  /// One response slot, queued in request arrival order. Immediate replies
  /// carry a pre-encoded body; PREDICT replies carry the serving future the
  /// writer waits on (in order, so pipelining never reorders responses).
  struct Pending {
    std::uint64_t request_id = 0;
    bool ready = true;
    Status status = Status::kOk;
    std::vector<std::uint8_t> body;
    std::future<Tensor> future;
    bool close_after = false;  ///< protocol error: reply, then hang up
  };

  std::mutex mutex;  ///< audit::LockRank::kNetConnection (leaf)
  std::condition_variable cv;
  std::deque<Pending> queue;
  bool reader_done = false;

  std::atomic<int> done_threads{0};
};

InferenceServer::InferenceServer(registry::Registry& registry,
                                 const NetOptions& options)
    : registry_(registry), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("net::InferenceServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw std::runtime_error("net::InferenceServer: bad host address '" +
                             options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("net::InferenceServer: cannot listen on " +
                             options_.host + ":" +
                             std::to_string(options_.port) + ": " + err);
  }
  // Read the bound port back: with options.port == 0 the kernel picked a
  // free one, which is what makes parallel ctest/bench processes
  // collision-safe.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    throw std::runtime_error("net::InferenceServer: getsockname failed: " +
                             err);
  }
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread(&InferenceServer::acceptor_main, this);
}

InferenceServer::~InferenceServer() { stop(); }

void InferenceServer::acceptor_main() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() shut the listening socket down; any other failure on the
      // accept path (EMFILE, EINVAL) also ends the accept loop — existing
      // connections keep serving either way.
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->reader =
        std::thread(&InferenceServer::reader_main, this, std::ref(*conn));
    conn->writer =
        std::thread(&InferenceServer::writer_main, this, std::ref(*conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kNetAccept);
      reap_finished_locked();
      connections_.push_back(std::move(conn));
    }
  }
}

void InferenceServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& conn = **it;
    if (conn.done_threads.load(std::memory_order_acquire) == 2) {
      conn.reader.join();
      conn.writer.join();
      ::close(conn.fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void InferenceServer::reader_main(Connection& conn) {
  std::uint8_t header_buf[kHeaderBytes];
  std::vector<std::uint8_t> body;

  auto push = [&](Connection::Pending pending) {
    {
      std::lock_guard<std::mutex> lock(conn.mutex);
      RT_AUDIT_LOCK(audit::LockRank::kNetConnection);
      conn.queue.push_back(std::move(pending));
    }
    conn.cv.notify_one();
  };
  auto protocol_error = [&](std::uint64_t request_id,
                            const std::string& message) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    Connection::Pending pending;
    pending.request_id = request_id;
    pending.status = Status::kProtocolError;
    pending.body = text_body(message);
    pending.close_after = true;
    push(std::move(pending));
  };

  for (;;) {
    const std::ptrdiff_t got = read_full(conn.fd, header_buf, kHeaderBytes);
    const auto receipt = std::chrono::steady_clock::now();
    if (got == 0) break;  // clean EOF at a frame boundary
    if (got < 0) break;   // socket error / shutdown — nothing to answer
    if (got < static_cast<std::ptrdiff_t>(kHeaderBytes)) {
      protocol_error(0, "truncated frame header");
      break;
    }
    FrameHeader header;
    const HeaderDecode decode =
        decode_header(header_buf, options_.max_body_bytes, &header);
    if (decode != HeaderDecode::kOk) {
      // With a bad magic the id bytes are as untrustworthy as the rest of
      // the header; every other failure mode decoded a structurally valid
      // header, so the id can be echoed for client-side correlation.
      const std::uint64_t id =
          decode == HeaderDecode::kBadMagic ? 0 : header.request_id;
      protocol_error(id, std::string("malformed frame header: ") +
                             header_decode_name(decode));
      break;
    }
    body.resize(header.body_len);
    if (header.body_len > 0) {
      const std::ptrdiff_t body_got =
          read_full(conn.fd, body.data(), header.body_len);
      if (body_got < static_cast<std::ptrdiff_t>(header.body_len)) {
        // Mid-payload disconnect: the peer is gone, so no error frame can
        // reach it — just retire the connection cleanly.
        break;
      }
    }
    if (!dispatch(conn, header, body, receipt)) break;
  }

  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    RT_AUDIT_LOCK(audit::LockRank::kNetConnection);
    conn.reader_done = true;
  }
  conn.cv.notify_one();
  conn.done_threads.fetch_add(1, std::memory_order_acq_rel);
}

bool InferenceServer::dispatch(
    Connection& conn, const FrameHeader& header,
    const std::vector<std::uint8_t>& body,
    std::chrono::steady_clock::time_point receipt) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  Connection::Pending pending;
  pending.request_id = header.request_id;
  bool keep_reading = true;

  auto fail = [&](Status status, const std::string& message) {
    pending.status = status;
    pending.body = text_body(message);
  };

  switch (static_cast<Verb>(header.kind)) {
    case Verb::kPing:
      break;  // kOk, empty body

    case Verb::kList: {
      std::ostringstream lines;
      for (const std::string& name : registry_.models()) {
        lines << name << " latest=" << registry_.latest(name)
              << " stable=" << registry_.stable(name)
              << " live=" << registry_.live_version(name)
              << " candidate=" << registry_.candidate_version(name) << "\n";
      }
      pending.body = text_body(lines.str());
      break;
    }

    case Verb::kStats: {
      std::string ref;
      std::string error;
      if (!decode_stats_body(body.data(), body.size(), &ref, &error)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        fail(Status::kProtocolError, "malformed stats body: " + error);
        pending.close_after = true;
        keep_reading = false;
        break;
      }
      try {
        registry_.resolve(ref);  // typed kNotFound for unknown model/version
        serving::Server* server =
            registry_.find_server(registry::parse_model_ref(ref).model);
        if (server == nullptr) {
          fail(Status::kFailedPrecondition,
               "model has no serving endpoint yet (send a PREDICT first)");
          break;
        }
        pending.body = text_body(serialize_stats(*server));
      } catch (const std::invalid_argument& e) {
        fail(Status::kBadRequest, e.what());
      } catch (const std::out_of_range& e) {
        fail(Status::kNotFound, e.what());
      } catch (const std::logic_error& e) {
        fail(Status::kFailedPrecondition, e.what());
      }
      break;
    }

    case Verb::kPredict: {
      PredictRequest request;
      std::string error;
      if (!decode_predict_body(body.data(), body.size(), &request, &error)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        fail(Status::kProtocolError, "malformed predict body: " + error);
        pending.close_after = true;
        keep_reading = false;
        break;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        fail(Status::kShuttingDown, "server is draining");
        break;
      }
      // Deadline honored before dispatch: the clock started when the frame
      // header was received, so time spent streaming a large payload (or
      // stuck behind a slow socket) counts against the budget. An expired
      // request is answered, never silently dropped, and never reaches the
      // serving queue.
      if (request.deadline_us > 0 &&
          std::chrono::steady_clock::now() >=
              receipt + std::chrono::microseconds(request.deadline_us)) {
        fail(Status::kDeadlineExceeded,
             "deadline of " + std::to_string(request.deadline_us) +
                 "us expired before dispatch");
        break;
      }
      try {
        const registry::WireRoute route = registry_.route_for_wire(
            request.ref, options_.serving, options_.compile);
        if (route.version != route.live_version &&
            route.version != route.candidate_version) {
          fail(Status::kFailedPrecondition,
               "version " + std::to_string(route.version) +
                   " is published but not live (live=" +
                   std::to_string(route.live_version) + "); deploy it first");
          break;
        }
        pending.ready = false;
        pending.future = route.server->submit(std::move(request.rows));
      } catch (const std::invalid_argument& e) {
        fail(Status::kBadRequest, e.what());
      } catch (const std::out_of_range& e) {
        fail(Status::kNotFound, e.what());
      } catch (const std::logic_error& e) {
        fail(Status::kFailedPrecondition, e.what());
      }
      break;
    }

    default:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      fail(Status::kProtocolError,
           "unknown verb " + std::to_string(header.kind));
      pending.close_after = true;
      keep_reading = false;
      break;
  }

  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    RT_AUDIT_LOCK(audit::LockRank::kNetConnection);
    conn.queue.push_back(std::move(pending));
  }
  conn.cv.notify_one();
  return keep_reading;
}

std::string InferenceServer::serialize_stats(serving::Server& server) {
  const serving::ServerStats s = server.stats();
  const serving::CacheStats c = server.cache_stats();
  std::ostringstream out;
  out << "submitted_requests " << s.submitted_requests << "\n"
      << "submitted_rows " << s.submitted_rows << "\n"
      << "completed_requests " << s.completed_requests << "\n"
      << "failed_requests " << s.failed_requests << "\n"
      << "rejected_requests " << s.rejected_requests << "\n"
      << "batches " << s.batches << "\n"
      << "batched_rows " << s.batched_rows << "\n"
      << "queued_rows " << s.queued_rows << "\n"
      << "capacity_rows " << s.capacity_rows << "\n"
      << "cache_hit_rows " << c.hit_rows << "\n"
      << "cache_miss_rows " << c.miss_rows << "\n"
      << "cache_inserted_rows " << c.inserted_rows << "\n"
      << "cache_evicted_rows " << c.evicted_rows << "\n"
      << "cache_size_rows " << c.size_rows << "\n"
      << "cache_capacity_rows " << c.capacity_rows << "\n"
      << "latency_count " << s.latency.count << "\n"
      << "latency_p50_us " << s.latency.quantile_us(0.50) << "\n"
      << "latency_p99_us " << s.latency.quantile_us(0.99) << "\n";
  return out.str();
}

void InferenceServer::writer_main(Connection& conn) {
  std::vector<std::uint8_t> frame;
  for (;;) {
    Connection::Pending pending;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      RT_AUDIT_LOCK(audit::LockRank::kNetConnection);
      conn.cv.wait(lock,
                   [&] { return !conn.queue.empty() || conn.reader_done; });
      if (conn.queue.empty()) break;  // reader finished and queue is flushed
      pending = std::move(conn.queue.front());
      conn.queue.pop_front();
    }
    if (!pending.ready) {
      // Waiting here — on the oldest in-flight request — is what keeps
      // responses in arrival order while later requests execute behind it.
      try {
        const Tensor logits = pending.future.get();
        pending.status = Status::kOk;
        encode_logits_body(logits, pending.body);
      } catch (const serving::ServerOverloaded& e) {
        pending.status = Status::kOverloaded;
        pending.body = text_body(e.what());
      } catch (const std::invalid_argument& e) {
        pending.status = Status::kBadRequest;
        pending.body = text_body(e.what());
      } catch (const std::exception& e) {
        pending.status = Status::kInternal;
        pending.body = text_body(e.what());
      }
      pending.ready = true;
    }
    FrameHeader header;
    header.kind = static_cast<std::uint8_t>(pending.status);
    header.request_id = pending.request_id;
    header.body_len = static_cast<std::uint32_t>(pending.body.size());
    frame.clear();
    encode_header(header, frame);
    frame.insert(frame.end(), pending.body.begin(), pending.body.end());
    if (!write_full(conn.fd, frame.data(), frame.size())) break;
    responses_.fetch_add(1, std::memory_order_relaxed);
    if (pending.close_after) break;
  }
  // Half-close so a well-behaved peer sees EOF after the last response; the
  // fd itself is closed once both threads are reaped.
  ::shutdown(conn.fd, SHUT_RDWR);
  conn.done_threads.fetch_add(1, std::memory_order_acq_rel);
}

NetCounters InferenceServer::counters() const {
  NetCounters out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.responses = responses_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kNetAccept);
    for (const auto& conn : connections_) {
      if (conn->done_threads.load(std::memory_order_acquire) < 2) {
        ++out.connections_open;
      }
    }
  }
  return out;
}

void InferenceServer::stop() {
  std::call_once(stop_once_, [&] {
    stopping_.store(true, std::memory_order_release);
    // Breaks the blocking accept(); no new connections from here on.
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (acceptor_.joinable()) acceptor_.join();
    std::vector<std::unique_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kNetAccept);
      conns.swap(connections_);
    }
    // Graceful drain: half-close the read side so every reader stops
    // consuming new frames, while writers keep flushing — every in-flight
    // PREDICT future completes and its response reaches the wire before
    // the socket closes. Zero admitted requests are lost.
    for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RD);
    for (const auto& conn : conns) {
      conn->reader.join();
      conn->writer.join();
      ::close(conn->fd);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  });
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error("net::Client: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net::Client: bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net::Client: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + err);
  }
  set_nodelay(fd_);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Reply Client::send_frame(Verb verb,
                                 const std::vector<std::uint8_t>& body) {
  FrameHeader header;
  header.kind = static_cast<std::uint8_t>(verb);
  header.request_id = next_id_++;
  header.body_len = static_cast<std::uint32_t>(body.size());
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  encode_header(header, frame);
  frame.insert(frame.end(), body.begin(), body.end());
  if (!write_full(fd_, frame.data(), frame.size())) {
    throw std::runtime_error("net::Client: connection closed while sending");
  }
  return Reply(this, header.request_id);
}

void Client::wait_for(std::uint64_t id) {
  while (received_.find(id) == received_.end()) {
    std::uint8_t header_buf[kHeaderBytes];
    const std::ptrdiff_t got = read_full(fd_, header_buf, kHeaderBytes);
    if (got < static_cast<std::ptrdiff_t>(kHeaderBytes)) {
      throw std::runtime_error("net::Client: connection closed by server");
    }
    FrameHeader header;
    if (decode_header(header_buf, kDefaultMaxBodyBytes, &header) !=
        HeaderDecode::kOk) {
      throw std::runtime_error("net::Client: malformed response header");
    }
    Response response;
    response.status = static_cast<Status>(header.kind);
    response.body.resize(header.body_len);
    if (header.body_len > 0 &&
        read_full(fd_, response.body.data(), header.body_len) <
            static_cast<std::ptrdiff_t>(header.body_len)) {
      throw std::runtime_error("net::Client: connection closed mid-response");
    }
    if (header.request_id == 0 &&
        response.status == Status::kProtocolError) {
      // Connection-level protocol error: the server could not attribute the
      // failure to any request, so no awaited id will ever resolve.
      throw RpcError(Status::kProtocolError,
                     std::string(response.body.begin(), response.body.end()));
    }
    received_.emplace(header.request_id, std::move(response));
  }
}

Client::Response Client::take(std::uint64_t id) {
  wait_for(id);
  const auto it = received_.find(id);
  Response response = std::move(it->second);
  received_.erase(it);
  return response;
}

Tensor Client::logits_or_throw(const Response& response) {
  if (response.status != Status::kOk) {
    throw RpcError(response.status,
                   std::string(response.body.begin(), response.body.end()));
  }
  Tensor logits{std::vector<std::int64_t>{1}};
  std::string error;
  if (!decode_logits_body(response.body.data(), response.body.size(), &logits,
                          &error)) {
    throw std::runtime_error("net::Client: malformed logits body: " + error);
  }
  return logits;
}

Tensor Client::Reply::get() {
  return logits_or_throw(client_->take(id_));
}

Client::Reply Client::submit(const std::string& ref, const Tensor& rows,
                             std::uint64_t deadline_us) {
  std::vector<std::uint8_t> body;
  encode_predict_body(ref, deadline_us, rows, body);
  return send_frame(Verb::kPredict, body);
}

Tensor Client::predict(const std::string& ref, const Tensor& rows,
                       std::uint64_t deadline_us) {
  return submit(ref, rows, deadline_us).get();
}

std::map<std::string, double> Client::stats(const std::string& ref) {
  std::vector<std::uint8_t> body;
  encode_stats_body(ref, body);
  const Response response = take(send_frame(Verb::kStats, body).id_);
  if (response.status != Status::kOk) {
    throw RpcError(response.status,
                   std::string(response.body.begin(), response.body.end()));
  }
  std::map<std::string, double> out;
  std::istringstream in(
      std::string(response.body.begin(), response.body.end()));
  std::string key;
  double value = 0.0;
  while (in >> key >> value) out[key] = value;
  return out;
}

std::vector<std::string> Client::list() {
  const Response response =
      take(send_frame(Verb::kList, std::vector<std::uint8_t>{}).id_);
  if (response.status != Status::kOk) {
    throw RpcError(response.status,
                   std::string(response.body.begin(), response.body.end()));
  }
  std::vector<std::string> lines;
  std::istringstream in(
      std::string(response.body.begin(), response.body.end()));
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

void Client::ping() {
  const Response response =
      take(send_frame(Verb::kPing, std::vector<std::uint8_t>{}).id_);
  if (response.status != Status::kOk) {
    throw RpcError(response.status,
                   std::string(response.body.begin(), response.body.end()));
  }
}

}  // namespace net
}  // namespace rt
