#pragma once
// rt::net — the TCP front-end over registry::Registry + serving::Server.
//
// Everything below the process boundary already exists: compiled tickets,
// the micro-batching Server with epochs and A/B routing, the versioned
// registry, the prediction cache. This layer is the network edge that lets a
// real client name "model@version" over a socket:
//
//   registry::Registry reg;
//   reg.publish("demo", model);
//   net::NetOptions opt;                       // port 0 = pick a free port
//   net::InferenceServer server(reg, opt);     // acceptor thread running
//   ...
//   net::Client client("127.0.0.1", server.port());
//   Tensor logits = client.predict("demo@latest", rows);   // blocking
//   net::Client::Reply r = client.submit("demo", rows);    // pipelined
//   ...
//   server.stop();                             // graceful drain
//
// Architecture: one acceptor thread owns the listening socket; each accepted
// connection is long-lived and owns two threads. The *reader* decodes
// length-prefixed frames (net/protocol.hpp) and dispatches each verb —
// PREDICT resolves the reference through Registry::route_for_wire and
// submits the rows to that model's serving::Server, collecting the future;
// STATS/LIST/PING are answered from registry and server counters. The
// *writer* streams responses back strictly in request arrival order, waiting
// on each PREDICT future in turn, so one connection pipelines any number of
// in-flight requests while replies stay positionally matched.
//
// Robustness is part of the contract, not a follow-up:
//   - a per-request deadline (microseconds after frame receipt) is honored
//     before dispatch: an expired request is answered with a
//     kDeadlineExceeded status frame — never silently dropped — and never
//     reaches the serving queue;
//   - serving::ServerOverloaded maps to kOverloaded, unknown references to
//     kNotFound, published-but-not-live versions to kFailedPrecondition,
//     geometry/shape rejections to kBadRequest — all typed status frames on
//     a connection that stays usable;
//   - malformed input (bad magic, truncated header, over-limit length,
//     garbage, mid-payload disconnect) never crashes the server: the
//     connection is answered with one kProtocolError frame where a reply is
//     possible and then closed, leaving every other connection untouched;
//   - stop() performs a graceful drain: the acceptor closes first, readers
//     stop consuming new frames, writers flush every in-flight future, and
//     only then do sockets close — zero admitted requests are lost across a
//     shutdown or a hot swap.
//
// Locking: the connection-table mutex (LockRank::kNetAccept) and each
// connection's response-queue mutex (kNetConnection) rank below every
// registry/serving lock. Dispatch never holds a net lock while calling into
// the registry or the serving layer; the queue mutex is held only to link or
// unlink one pending response.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/plan.hpp"
#include "net/protocol.hpp"
#include "registry/registry.hpp"
#include "serving/serving.hpp"
#include "tensor/tensor.hpp"

namespace rt {
namespace net {

struct NetOptions {
  /// Listen address. Loopback by default — exposing a fleet beyond the host
  /// is a deliberate operator decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reads the actual number back, which
  /// is what makes parallel test/bench processes collision-safe.
  std::uint16_t port = 0;
  int backlog = 64;
  /// Frames announcing a larger body are protocol errors (connection
  /// closes before any allocation).
  std::uint32_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Serving options for a model's Server when a PREDICT reference creates
  /// it (first use); existing servers are reused unchanged.
  serving::ServerOptions serving;
  /// Compile options for first-use plan builds (same role as `serving`).
  CompileOptions compile;
};

/// Point-in-time counters for the network layer itself (the serving-layer
/// counters ride the STATS verb).
struct NetCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;         ///< frames decoded into a verb
  std::uint64_t responses = 0;        ///< response frames written
  std::uint64_t protocol_errors = 0;  ///< connections killed by bad frames
};

/// TCP front-end binding a Registry. Thread-safe; stop() (or destruction)
/// drains gracefully. The registry must outlive the server.
class InferenceServer {
 public:
  /// Binds, listens, and starts the acceptor thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  explicit InferenceServer(registry::Registry& registry,
                           const NetOptions& options = {});
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// The actual bound port (resolves port 0 requests).
  std::uint16_t port() const { return port_; }
  const NetOptions& options() const { return options_; }
  NetCounters counters() const;

  /// Graceful drain: stops accepting, lets readers finish the frame they
  /// are on, flushes every in-flight PREDICT future through the writers,
  /// then closes all sockets. Idempotent; the destructor calls it.
  void stop();

 private:
  struct Connection;

  void acceptor_main();
  void reader_main(Connection& conn);
  void writer_main(Connection& conn);
  /// Decodes and dispatches one request body, appending the pending
  /// response (immediate or future-backed) to the connection's queue.
  /// Returns false when the reader must stop (terminal protocol error).
  bool dispatch(Connection& conn, const FrameHeader& header,
                const std::vector<std::uint8_t>& body,
                std::chrono::steady_clock::time_point receipt);
  /// The STATS verb's "key value\n" body for one model's server.
  static std::string serialize_stats(serving::Server& server);
  /// Reaps joined connections; called from the acceptor between accepts.
  void reap_finished_locked();

  registry::Registry& registry_;
  NetOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> stopping_{false};
  std::once_flag stop_once_;
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};

  /// Guards the connection table only (LockRank::kNetAccept). Never held
  /// across dispatch, joins, or socket syscalls on connection fds.
  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::thread acceptor_;
};

/// A typed RPC failure: the response frame's status plus its diagnostic
/// body. Thrown by Client calls and Reply::get().
class RpcError : public std::runtime_error {
 public:
  RpcError(Status status, const std::string& message)
      : std::runtime_error(std::string(status_name(status)) + ": " + message),
        status_(status) {}
  Status status() const { return status_; }

 private:
  Status status_;
};

/// Blocking + pipelined client for one connection. NOT thread-safe: one
/// thread drives a Client (the bench runs one Client per connection thread);
/// open several Clients for concurrent connections.
class Client {
 public:
  /// Connects immediately; throws std::runtime_error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// A pipelined in-flight request. get() blocks for the response and
  /// returns the logits or throws RpcError; replies may be awaited in any
  /// order (the client buffers whatever arrives ahead of the asked-for id).
  class Reply {
   public:
    Tensor get();

   private:
    friend class Client;
    Reply(Client* client, std::uint64_t id) : client_(client), id_(id) {}
    Client* client_;
    std::uint64_t id_;
  };

  /// Sends a PREDICT frame without waiting: the wire carries it while the
  /// caller submits more. `deadline_us` is relative to server receipt
  /// (0 = none).
  Reply submit(const std::string& ref, const Tensor& rows,
               std::uint64_t deadline_us = 0);
  /// Blocking round-trip: submit(...).get().
  Tensor predict(const std::string& ref, const Tensor& rows,
                 std::uint64_t deadline_us = 0);

  /// The model's serving counters as the STATS verb serializes them:
  /// "key value" per line, parsed into a map (keys like
  /// "submitted_requests", "latency_p99_us", "cache_hit_rows", ...).
  std::map<std::string, double> stats(const std::string& ref);
  /// Registry catalog lines ("name latest=N stable=N live=N candidate=N").
  std::vector<std::string> list();
  /// Round-trip liveness probe; throws if the server is unreachable.
  void ping();

 private:
  Reply send_frame(Verb verb, const std::vector<std::uint8_t>& body);
  /// Reads frames off the socket until `id` has arrived, buffering others.
  void wait_for(std::uint64_t id);
  /// The decoded response for `id`: status + body.
  struct Response {
    Status status = Status::kOk;
    std::vector<std::uint8_t> body;
  };
  Response take(std::uint64_t id);
  /// Decodes a response body or throws the typed RpcError for non-OK.
  static Tensor logits_or_throw(const Response& response);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Response> received_;
};

}  // namespace net
}  // namespace rt
