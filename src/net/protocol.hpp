#pragma once
// rt::net wire protocol — length-prefixed binary frames over a byte stream.
//
// Every message in either direction is one frame: a fixed 20-byte header
// followed by `body_len` body bytes. All integers are little-endian and
// encoded/decoded byte-by-byte (no struct punning, no alignment or host
// endianness assumptions):
//
//   offset  size  field
//   0       4     magic       0x52544E46 ("RTNF")
//   4       1     version     kProtocolVersion (currently 1)
//   5       1     kind        request: Verb; response: Status
//   6       2     reserved    must be 0
//   8       8     request_id  echoed verbatim in the response
//   16      4     body_len    body bytes following the header
//
// Verbs (client -> server):
//   PREDICT  body = u16 ref_len, ref bytes ("model", "model@7", "model@latest",
//            "model@stable"), u64 deadline_us (relative to server receipt of
//            the frame header; 0 = no deadline), u32 n, u32 channels, u32
//            height, u32 width, then n*channels*height*width f32 row data.
//   STATS    body = u16 ref_len, ref bytes (the model whose serving counters
//            to snapshot).
//   LIST     empty body.
//   PING     empty body.
//
// Responses carry a Status in the header's kind byte. kOk bodies are
// verb-specific (PREDICT: u32 n, u32 classes, n*classes f32 logits; STATS and
// LIST: UTF-8 "key value\n" / one-entry-per-line text; PING: empty). Any
// non-kOk body is a UTF-8 diagnostic message. kProtocolError is terminal:
// the server sends it (request_id 0 when the offending header was not even
// decodable) and then closes the connection; every other status leaves the
// connection usable.
//
// Responses stream back in request arrival order, so one connection can
// pipeline many in-flight requests and still match replies to requests
// positionally (request_id is echoed as a cross-check, not an ordering
// mechanism).
//
// This header is deliberately socket-free: tests fuzz decode_* directly on
// in-memory buffers (tests/test_net.cpp), and the framing logic cannot drift
// from what InferenceServer and Client actually speak because both sides
// link exactly these functions.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace rt {
namespace net {

inline constexpr std::uint32_t kMagic = 0x52544E46u;  // "RTNF"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;
/// Default cap on body_len (NetOptions::max_body_bytes can lower it). A
/// header announcing more than the configured cap is a protocol error — the
/// connection closes before any oversized allocation happens.
inline constexpr std::uint32_t kDefaultMaxBodyBytes = 64u << 20;

enum class Verb : std::uint8_t {
  kPredict = 1,
  kStats = 2,
  kList = 3,
  kPing = 4,
};

enum class Status : std::uint8_t {
  kOk = 0,
  /// Malformed frame (bad magic/version/reserved bits, over-limit length,
  /// undecodable body, unknown verb). Terminal: the connection closes.
  kProtocolError = 1,
  /// Well-formed frame the serving layer rejected: bad tensor geometry for
  /// the model, zero-extent shape, malformed reference syntax.
  kBadRequest = 2,
  /// The reference names a model or version the registry does not hold.
  kNotFound = 3,
  /// The request's deadline expired before dispatch; it was never submitted.
  kDeadlineExceeded = 4,
  /// serving::Server admission control rejected the rows (queue at capacity).
  kOverloaded = 5,
  /// The reference resolves to a published version that is not currently
  /// live (neither primary nor A/B candidate) — deploy it first.
  kFailedPrecondition = 6,
  /// The server is draining: stop() ran; already-admitted requests still
  /// complete, new ones are turned away.
  kShuttingDown = 7,
  /// A shard threw something unexpected executing the batch.
  kInternal = 8,
};

/// Stable lowercase names for logs and error text ("ok", "protocol_error",
/// ...). Unknown values map to "unknown".
const char* status_name(Status status);
const char* verb_name(Verb verb);

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kProtocolVersion;
  std::uint8_t kind = 0;  ///< Verb (requests) or Status (responses)
  std::uint16_t reserved = 0;
  std::uint64_t request_id = 0;
  std::uint32_t body_len = 0;
};

// ---- primitive little-endian append/read helpers ---------------------------

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_f32(std::vector<std::uint8_t>& out, float v);
std::uint16_t read_u16(const std::uint8_t* p);
std::uint32_t read_u32(const std::uint8_t* p);
std::uint64_t read_u64(const std::uint8_t* p);
float read_f32(const std::uint8_t* p);

// ---- header ---------------------------------------------------------------

/// Appends the 20 header bytes to `out`.
void encode_header(const FrameHeader& header, std::vector<std::uint8_t>& out);

enum class HeaderDecode {
  kOk,
  kBadMagic,
  kBadVersion,
  kBadReserved,
  kOverLimit,  ///< body_len exceeds max_body_bytes
};
/// Decodes exactly kHeaderBytes from `p` and validates magic, version, the
/// reserved field, and the body-length cap. `out` is filled even on failure
/// (for diagnostics); the kind byte is NOT validated here — request and
/// response sides interpret it against their own enum.
HeaderDecode decode_header(const std::uint8_t* p, std::uint32_t max_body_bytes,
                           FrameHeader* out);
const char* header_decode_name(HeaderDecode result);

// ---- PREDICT bodies -------------------------------------------------------

struct PredictRequest {
  std::string ref;
  /// Microseconds after server receipt of the frame header by which the
  /// request must have been dispatched; 0 = no deadline.
  std::uint64_t deadline_us = 0;
  Tensor rows{std::vector<std::int64_t>{1}};  ///< (n, c, h, w) after decode
};

/// Appends a PREDICT request body. `rows` must be a 4-D (n, c, h, w) batch.
void encode_predict_body(const std::string& ref, std::uint64_t deadline_us,
                         const Tensor& rows, std::vector<std::uint8_t>& out);
/// Decodes a PREDICT body. Returns false (with a diagnostic in `error`) on
/// any inconsistency: truncated fields, zero extents, or a payload whose
/// length does not match the announced shape exactly.
bool decode_predict_body(const std::uint8_t* body, std::size_t len,
                         PredictRequest* out, std::string* error);

/// Appends a PREDICT kOk response body from an (n, classes) logits tensor.
void encode_logits_body(const Tensor& logits, std::vector<std::uint8_t>& out);
/// Decodes an (n, classes) logits body; same contract as
/// decode_predict_body.
bool decode_logits_body(const std::uint8_t* body, std::size_t len,
                        Tensor* logits, std::string* error);

// ---- STATS bodies ---------------------------------------------------------

/// Appends a STATS request body (just the model reference).
void encode_stats_body(const std::string& ref, std::vector<std::uint8_t>& out);
bool decode_stats_body(const std::uint8_t* body, std::size_t len,
                       std::string* ref, std::string* error);

}  // namespace net
}  // namespace rt
