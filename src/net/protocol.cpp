#include "net/protocol.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>

namespace rt {
namespace net {

const char* status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kProtocolError: return "protocol_error";
    case Status::kBadRequest: return "bad_request";
    case Status::kNotFound: return "not_found";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kOverloaded: return "overloaded";
    case Status::kFailedPrecondition: return "failed_precondition";
    case Status::kShuttingDown: return "shutting_down";
    case Status::kInternal: return "internal";
  }
  return "unknown";
}

const char* verb_name(Verb verb) {
  switch (verb) {
    case Verb::kPredict: return "predict";
    case Verb::kStats: return "stats";
    case Verb::kList: return "list";
    case Verb::kPing: return "ping";
  }
  return "unknown";
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  static_assert(sizeof(float) == 4, "wire format assumes 32-bit float");
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

std::uint16_t read_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(read_u32(p)) |
         (static_cast<std::uint64_t>(read_u32(p + 4)) << 32);
}

float read_f32(const std::uint8_t* p) {
  const std::uint32_t bits = read_u32(p);
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void encode_header(const FrameHeader& header, std::vector<std::uint8_t>& out) {
  put_u32(out, header.magic);
  out.push_back(header.version);
  out.push_back(header.kind);
  put_u16(out, header.reserved);
  put_u64(out, header.request_id);
  put_u32(out, header.body_len);
}

HeaderDecode decode_header(const std::uint8_t* p, std::uint32_t max_body_bytes,
                           FrameHeader* out) {
  out->magic = read_u32(p);
  out->version = p[4];
  out->kind = p[5];
  out->reserved = read_u16(p + 6);
  out->request_id = read_u64(p + 8);
  out->body_len = read_u32(p + 16);
  if (out->magic != kMagic) return HeaderDecode::kBadMagic;
  if (out->version != kProtocolVersion) return HeaderDecode::kBadVersion;
  if (out->reserved != 0) return HeaderDecode::kBadReserved;
  if (out->body_len > max_body_bytes) return HeaderDecode::kOverLimit;
  return HeaderDecode::kOk;
}

const char* header_decode_name(HeaderDecode result) {
  switch (result) {
    case HeaderDecode::kOk: return "ok";
    case HeaderDecode::kBadMagic: return "bad magic";
    case HeaderDecode::kBadVersion: return "unsupported protocol version";
    case HeaderDecode::kBadReserved: return "nonzero reserved field";
    case HeaderDecode::kOverLimit: return "body length over limit";
  }
  return "unknown";
}

namespace {

/// Bounded sequential reader over a body buffer: every decode_* walks the
/// payload through one of these so a truncated field can never read past
/// `len` (the mini-fuzzer in tests/test_net.cpp leans on this).
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  bool skip(std::size_t n) {
    if (left < n) return false;
    p += n;
    left -= n;
    return true;
  }
};

bool take_u16(Cursor& c, std::uint16_t* v) {
  if (c.left < 2) return false;
  *v = read_u16(c.p);
  return c.skip(2);
}

bool take_u32(Cursor& c, std::uint32_t* v) {
  if (c.left < 4) return false;
  *v = read_u32(c.p);
  return c.skip(4);
}

bool take_u64(Cursor& c, std::uint64_t* v) {
  if (c.left < 8) return false;
  *v = read_u64(c.p);
  return c.skip(8);
}

bool take_string(Cursor& c, std::string* s) {
  std::uint16_t n = 0;
  if (!take_u16(c, &n)) return false;
  if (c.left < n) return false;
  s->assign(reinterpret_cast<const char*>(c.p), n);
  return c.skip(n);
}

/// Reads a shape-prefixed f32 tensor (u32 extents then the payload) that
/// must consume the cursor exactly. Extent product is checked in 64-bit
/// before any allocation, so a hostile shape cannot overflow or balloon.
bool take_tensor(Cursor& c, std::size_t rank, Tensor* out,
                 std::string* error) {
  std::vector<std::int64_t> shape(rank);
  std::uint64_t volume = 1;
  for (std::size_t d = 0; d < rank; ++d) {
    std::uint32_t extent = 0;
    if (!take_u32(c, &extent)) {
      *error = "truncated tensor shape";
      return false;
    }
    if (extent == 0) {
      *error = "zero tensor extent";
      return false;
    }
    shape[d] = static_cast<std::int64_t>(extent);
    volume *= extent;
    // The payload already arrived (body_len-bounded), so the only way the
    // product can exceed what is left is an inconsistent header — reject
    // before multiplying toward overflow.
    if (volume > (std::numeric_limits<std::uint32_t>::max)() / 4u) {
      *error = "tensor volume over limit";
      return false;
    }
  }
  if (c.left != volume * 4u) {
    *error = "tensor payload length mismatch";
    return false;
  }
  std::vector<float> data(static_cast<std::size_t>(volume));
  for (std::uint64_t i = 0; i < volume; ++i) {
    data[static_cast<std::size_t>(i)] = read_f32(c.p + 4 * i);
  }
  c.skip(static_cast<std::size_t>(volume) * 4u);
  *out = Tensor::from_data(std::move(shape), std::move(data));
  return true;
}

void put_tensor(const Tensor& t, std::vector<std::uint8_t>& out) {
  for (std::size_t d = 0; d < t.ndim(); ++d) {
    put_u32(out, static_cast<std::uint32_t>(t.dim(d)));
  }
  const float* data = t.data();
  for (std::int64_t i = 0; i < t.numel(); ++i) put_f32(out, data[i]);
}

}  // namespace

void encode_predict_body(const std::string& ref, std::uint64_t deadline_us,
                         const Tensor& rows, std::vector<std::uint8_t>& out) {
  if (rows.ndim() != 4) {
    throw std::invalid_argument("encode_predict_body: rows must be 4-D, got " +
                                rows.shape_str());
  }
  if (ref.size() > (std::numeric_limits<std::uint16_t>::max)()) {
    throw std::invalid_argument("encode_predict_body: ref too long");
  }
  put_u16(out, static_cast<std::uint16_t>(ref.size()));
  out.insert(out.end(), ref.begin(), ref.end());
  put_u64(out, deadline_us);
  put_tensor(rows, out);
}

bool decode_predict_body(const std::uint8_t* body, std::size_t len,
                         PredictRequest* out, std::string* error) {
  Cursor c{body, len};
  if (!take_string(c, &out->ref)) {
    *error = "truncated model reference";
    return false;
  }
  if (!take_u64(c, &out->deadline_us)) {
    *error = "truncated deadline";
    return false;
  }
  return take_tensor(c, 4, &out->rows, error);
}

void encode_logits_body(const Tensor& logits, std::vector<std::uint8_t>& out) {
  if (logits.ndim() != 2) {
    throw std::invalid_argument(
        "encode_logits_body: logits must be 2-D, got " + logits.shape_str());
  }
  put_tensor(logits, out);
}

bool decode_logits_body(const std::uint8_t* body, std::size_t len,
                        Tensor* logits, std::string* error) {
  Cursor c{body, len};
  return take_tensor(c, 2, logits, error);
}

void encode_stats_body(const std::string& ref,
                       std::vector<std::uint8_t>& out) {
  if (ref.size() > (std::numeric_limits<std::uint16_t>::max)()) {
    throw std::invalid_argument("encode_stats_body: ref too long");
  }
  put_u16(out, static_cast<std::uint16_t>(ref.size()));
  out.insert(out.end(), ref.begin(), ref.end());
}

bool decode_stats_body(const std::uint8_t* body, std::size_t len,
                       std::string* ref, std::string* error) {
  Cursor c{body, len};
  if (!take_string(c, ref)) {
    *error = "truncated model reference";
    return false;
  }
  if (c.left != 0) {
    *error = "trailing bytes after model reference";
    return false;
  }
  return true;
}

}  // namespace net
}  // namespace rt
