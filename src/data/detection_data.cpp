#include "data/detection_data.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/synth.hpp"

namespace rt {

namespace {
constexpr int kS = kImageSize;
// Same 3-class palette as segmentation: disk, diamond, cross.
constexpr int kDetArchetypes[3] = {0, 9, 8};
}  // namespace

double box_iou(const BoxF& a, const BoxF& b) {
  const float ix0 = std::max(a.x0, b.x0);
  const float iy0 = std::max(a.y0, b.y0);
  const float ix1 = std::min(a.x1, b.x1);
  const float iy1 = std::min(a.y1, b.y1);
  const float iw = ix1 - ix0, ih = iy1 - iy0;
  if (iw <= 0.0f || ih <= 0.0f) return 0.0;
  const double inter = static_cast<double>(iw) * static_cast<double>(ih);
  const double uni =
      static_cast<double>(a.area()) + static_cast<double>(b.area()) - inter;
  return uni > 0.0 ? inter / uni : 0.0;
}

DetDataset generate_detection_dataset(int n, float shift, std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("detection: n must be > 0");
  DetDataset ds;
  ds.name = "synth-det";
  ds.images = Tensor({n, 3, kS, kS});
  ds.objects.resize(static_cast<std::size_t>(n));

  Rng rng(seed ^ 0xDE7EC7ULL);
  const float noise_sigma = 0.02f + 0.06f * shift;
  const float gains[3] = {1.0f + shift * rng.uniform(-0.3f, 0.3f),
                          1.0f + shift * rng.uniform(-0.3f, 0.3f),
                          1.0f + shift * rng.uniform(-0.3f, 0.3f)};

  for (int i = 0; i < n; ++i) {
    Rng inst = rng.split();
    // At most two objects: shapes are large relative to the 16-px canvas,
    // and detection needs the centre cells to stay visually distinct.
    const int num_shapes = inst.uniform_int(1, 2);

    const float b0 = inst.uniform(0.30f, 0.45f);
    const float gx = inst.uniform(-0.12f, 0.12f);
    const float gy = inst.uniform(-0.12f, 0.12f);
    float* img = ds.images.data() + static_cast<std::int64_t>(i) * 3 * kS * kS;
    for (int ch = 0; ch < 3; ++ch) {
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          img[(ch * kS + y) * kS + x] =
              b0 + gx * (static_cast<float>(x) - 7.5f) / 8.0f +
              gy * (static_cast<float>(y) - 7.5f) / 8.0f;
        }
      }
    }

    std::vector<std::pair<float, float>> used_centres;
    for (int s = 0; s < num_shapes; ++s) {
      const int cls = inst.uniform_int(0, 2);
      // Rejection-sample a centre at least 6.5 px from every placed object:
      // this both separates the boxes (limited overlap, so NMS does not
      // merge distinct ground truths) and guarantees distinct stride-2
      // detector cells.
      float cx = 0.0f, cy = 0.0f;
      bool placed = false;
      for (int attempt = 0; attempt < 16 && !placed; ++attempt) {
        cx = inst.uniform(3.5f, 11.5f);
        cy = inst.uniform(3.5f, 11.5f);
        placed = true;
        for (const auto& [ux, uy] : used_centres) {
          const float dx = cx - ux, dy = cy - uy;
          if (dx * dx + dy * dy < 6.5f * 6.5f) {
            placed = false;
            break;
          }
        }
      }
      if (!placed) continue;
      used_centres.emplace_back(cx, cy);

      float mask[kS * kS];
      render_archetype(kDetArchetypes[cls], cx, cy, inst, mask);
      const float amp = inst.uniform(0.40f, 0.60f);
      // Class-biased hue with per-instance jitter: classes are separable by
      // shape AND (noisily) by colour, as real detection categories are.
      const float hue = static_cast<float>(cls) / 3.0f +
                        inst.uniform(-0.12f, 0.12f);
      float color[3];
      for (int ch = 0; ch < 3; ++ch) {
        color[ch] = 0.55f + 0.45f * std::sin(
            6.2831853f * (hue + static_cast<float>(ch) / 3.0f));
      }
      int bx0 = kS, by0 = kS, bx1 = -1, by1 = -1;
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float m = mask[y * kS + x];
          if (m <= 0.0f) continue;
          for (int ch = 0; ch < 3; ++ch) {
            img[(ch * kS + y) * kS + x] += amp * color[ch] * m;
          }
          if (m > 0.5f) {
            bx0 = std::min(bx0, x);
            by0 = std::min(by0, y);
            bx1 = std::max(bx1, x);
            by1 = std::max(by1, y);
          }
        }
      }
      if (bx1 < bx0) continue;  // shape support fell below threshold
      DetObject obj;
      obj.box = BoxF{static_cast<float>(bx0), static_cast<float>(by0),
                     static_cast<float>(bx1 + 1), static_cast<float>(by1 + 1)};
      obj.cls = cls;
      ds.objects[static_cast<std::size_t>(i)].push_back(obj);
    }

    for (int ch = 0; ch < 3; ++ch) {
      for (int px = 0; px < kS * kS; ++px) {
        float v = img[ch * kS * kS + px] * gains[ch];
        v += inst.normal(0.0f, noise_sigma);
        img[ch * kS * kS + px] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return ds;
}

}  // namespace rt
