#include "data/dataset.hpp"

#include <stdexcept>

namespace rt {

std::vector<std::vector<int>> make_batches(int n, int batch_size, Rng& rng) {
  if (n <= 0 || batch_size <= 0) {
    throw std::invalid_argument("make_batches: bad sizes");
  }
  std::vector<int> order = random_permutation(n, rng);
  std::vector<std::vector<int>> batches;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    batches.emplace_back(order.begin() + start, order.begin() + end);
  }
  return batches;
}

std::vector<std::vector<int>> make_eval_batches(int n, int batch_size) {
  std::vector<std::vector<int>> batches;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    std::vector<int> b(static_cast<std::size_t>(end - start));
    for (int i = start; i < end; ++i) b[static_cast<std::size_t>(i - start)] = i;
    batches.push_back(std::move(b));
  }
  return batches;
}

Tensor gather_images(const Tensor& images, const std::vector<int>& indices) {
  if (images.ndim() < 2) throw std::invalid_argument("gather_images: ndim");
  std::vector<std::int64_t> shape = images.shape();
  const std::int64_t row = images.numel() / shape[0];
  shape[0] = static_cast<std::int64_t>(indices.size());
  Tensor out(shape);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t src = indices[i];
    if (src < 0 || src >= images.dim(0)) {
      throw std::out_of_range("gather_images: index");
    }
    const float* s = images.data() + src * row;
    float* d = out.data() + static_cast<std::int64_t>(i) * row;
    for (std::int64_t j = 0; j < row; ++j) d[j] = s[j];
  }
  return out;
}

std::vector<int> gather_labels(const std::vector<int>& labels,
                               const std::vector<int>& indices) {
  std::vector<int> out(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out[i] = labels.at(static_cast<std::size_t>(indices[i]));
  }
  return out;
}

Tensor mean_blur3(const Tensor& images) {
  const std::int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2),
                     w = images.dim(3);
  Tensor out({n, c, h, w});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* src = images.data() + (i * c + ch) * h * w;
      float* dst = out.data() + (i * c + ch) * h * w;
      for (std::int64_t y = 0; y < h; ++y) {
        for (std::int64_t x = 0; x < w; ++x) {
          float acc = 0.0f;
          for (std::int64_t dy = -1; dy <= 1; ++dy) {
            for (std::int64_t dx = -1; dx <= 1; ++dx) {
              const std::int64_t yy = y + dy, xx = x + dx;
              if (yy >= 0 && yy < h && xx >= 0 && xx < w) {
                acc += src[yy * w + xx];
              }
            }
          }
          dst[y * w + x] = acc / 9.0f;
        }
      }
    }
  }
  return out;
}

Dataset corrupt_dataset(const Dataset& clean, float noise_sigma, bool blur,
                        std::uint64_t seed) {
  Dataset out;
  out.labels = clean.labels;
  out.num_classes = clean.num_classes;
  out.name = clean.name + "-corrupt";
  out.images = blur ? mean_blur3(clean.images) : clean.images;
  Rng rng(seed);
  for (std::int64_t i = 0; i < out.images.numel(); ++i) {
    out.images[i] += rng.normal(0.0f, noise_sigma);
  }
  out.images.clamp_(0.0f, 1.0f);
  return out;
}

}  // namespace rt
