#pragma once
// Typed common-corruption suite with graded severities (ImageNet-C analogue).
//
// Fig. 8 / Tab. I report "Crpt-Acc" on corrupted test sets. The basic
// corrupt_dataset() in dataset.hpp applies one fixed noise+blur recipe; this
// module generalizes it to seven corruption families, each with severity
// levels 1..5, so robustness can be summarized as mean corruption accuracy
// (mCA) over the whole suite — the standard ImageNet-C protocol scaled down
// to the synthetic substrate.

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/module.hpp"

namespace rt {

enum class CorruptionType {
  kGaussianNoise,  ///< additive i.i.d. noise
  kImpulseNoise,   ///< salt-and-pepper pixels
  kMeanBlur,       ///< repeated 3x3 mean filter
  kContrast,       ///< compress around the per-image mean
  kBrightness,     ///< additive global offset
  kPixelate,       ///< block-average downsample + nearest upsample
  kOcclusion,      ///< random zeroed square patch per image
};

constexpr int kCorruptionSeverities = 5;

/// All corruption families, in a fixed order (suite identity).
const std::vector<CorruptionType>& corruption_suite();

const char* corruption_name(CorruptionType type);

/// Applies one corruption at the given severity (1..5, higher = harsher) to a
/// batch of images (N,3,H,W) in [0,1]. Deterministic in (type, severity,
/// seed). Output stays in [0,1].
Tensor apply_corruption(const Tensor& images, CorruptionType type,
                        int severity, std::uint64_t seed);

/// Dataset-level convenience wrapper (labels/classes copied through).
Dataset corrupt_with(const Dataset& clean, CorruptionType type, int severity,
                     std::uint64_t seed);

/// Accuracy per (type, severity) cell plus the suite mean (mCA).
struct CorruptionReport {
  /// accuracy[t][s-1] for suite type index t and severity s.
  std::vector<std::vector<float>> accuracy;
  float clean_accuracy = 0.0f;
  float mean_corruption_accuracy = 0.0f;

  /// Mean accuracy of one corruption family across severities.
  float family_mean(std::size_t type_index) const;
};

/// Runs the full suite (|types| x 5 evaluations) on a classifier.
CorruptionReport evaluate_corruption_suite(Module& model, const Dataset& clean,
                                           std::uint64_t seed,
                                           int batch_size = 64);

}  // namespace rt
