#include "data/tasks.hpp"

#include <stdexcept>

namespace rt {

const std::vector<TaskEntry>& vtab_suite() {
  // Shift values decrease with the paper's FID (Tab. II): large FID = large
  // domain gap. Seeds are arbitrary but fixed.
  static const std::vector<TaskEntry> kSuite = {
      {"cifar10",    10, 0.95f, 101, 205.04, "Robust"},
      {"aircraft",   10, 0.90f, 102, 198.33, "Robust"},
      {"cifar100",   20, 0.85f, 103, 190.31, "Robust"},
      {"pets",       10, 0.78f, 104, 173.23, "Robust"},
      {"flowers",    10, 0.70f, 105, 153.76, "Robust"},
      {"cars",       10, 0.68f, 106, 150.92, "Robust"},
      {"food",       10, 0.52f, 107, 115.95, "Match"},
      {"dtd",        10, 0.45f, 108, 97.33,  "Natural"},
      {"birdsnap",   10, 0.42f, 109, 92.64,  "Match"},
      {"sun397",     10, 0.30f, 110, 67.70,  "Natural"},
      {"caltech101", 10, 0.25f, 111, 56.71,  "Robust"},
      {"caltech256", 10, 0.12f, 112, 27.54,  "Match"},
  };
  return kSuite;
}

const TaskEntry& task_entry(const std::string& name) {
  for (const TaskEntry& e : vtab_suite()) {
    if (e.name == name) return e;
  }
  throw std::out_of_range("unknown task: " + name);
}

SynthTaskSpec task_spec(const TaskEntry& entry) {
  return downstream_task_spec(entry.name, entry.num_classes, entry.shift,
                              entry.seed);
}

SynthTaskSpec task_spec(const std::string& name) {
  return task_spec(task_entry(name));
}

TaskData load_task(const SynthTaskSpec& spec, int train_size, int test_size) {
  TaskData data;
  data.spec = spec;
  data.train = generate_dataset(spec, train_size, /*sample_seed=*/17);
  data.test = generate_dataset(spec, test_size, /*sample_seed=*/29);
  return data;
}

TaskData load_task(const std::string& name, int train_size, int test_size) {
  return load_task(task_spec(name), train_size, test_size);
}

TaskData load_source_task(int train_size, int test_size) {
  return load_task(source_task_spec(), train_size, test_size);
}

}  // namespace rt
