#pragma once
// Named downstream-task registry: the CIFAR/VTAB analogue suite.
//
// Each paper dataset is mapped to a generated task whose `shift` knob is
// calibrated so that the measured FID ordering against the source matches
// the paper's Tab. II ordering (CIFAR-10 largest gap ... Caltech-256
// smallest). Class counts are scaled down to keep CPU training fast.

#include <string>
#include <vector>

#include "data/synth.hpp"

namespace rt {

/// One benchmark downstream task.
struct TaskEntry {
  std::string name;        ///< paper dataset it stands in for
  int num_classes;
  float shift;             ///< domain-gap knob
  std::uint64_t seed;      ///< task identity
  double paper_fid;        ///< FID the paper reports vs ImageNet (Tab. II)
  std::string paper_winner;///< winner reported in Tab. II
};

/// The 12-task suite of Fig. 9 / Tab. II, ordered by descending paper FID.
const std::vector<TaskEntry>& vtab_suite();

/// Looks up a suite entry by name; throws std::out_of_range if unknown.
const TaskEntry& task_entry(const std::string& name);

/// Builds the generator spec for a suite entry.
SynthTaskSpec task_spec(const TaskEntry& entry);
SynthTaskSpec task_spec(const std::string& name);

/// Train/test split of a task, generated deterministically.
struct TaskData {
  SynthTaskSpec spec;
  Dataset train;
  Dataset test;
};

/// Generates train/test data for a named suite task.
TaskData load_task(const std::string& name, int train_size, int test_size);

/// Generates train/test data for an arbitrary spec.
TaskData load_task(const SynthTaskSpec& spec, int train_size, int test_size);

/// The source (pretraining) task with its train/test split.
TaskData load_source_task(int train_size, int test_size);

}  // namespace rt
