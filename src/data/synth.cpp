#include "data/synth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/numeric.hpp"

namespace rt {

namespace {

constexpr int kS = kImageSize;
constexpr std::uint64_t kSourceSeed = 0xA11CEULL;
// kTwoPi comes from common/numeric.hpp.

float soft_edge(float signed_dist, float sharpness = 1.2f) {
  // Maps signed distance (positive inside) to [0, 1] with a soft boundary.
  const float v = signed_dist * sharpness + 0.5f;
  return v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
}

std::array<float, 3> hue_to_color(float hue) {
  std::array<float, 3> c{};
  for (int ch = 0; ch < 3; ++ch) {
    const float phase = hue + static_cast<float>(ch) / 3.0f;
    c[static_cast<std::size_t>(ch)] =
        0.55f + 0.45f * std::sin(kTwoPi * phase);
  }
  return c;
}

}  // namespace

void render_archetype(int archetype, float cx, float cy, Rng& rng,
                      float* mask) {
  if (archetype < 0 || archetype >= kNumArchetypes) {
    throw std::invalid_argument("render_archetype: bad archetype");
  }
  auto at = [&](int y, int x) -> float& { return mask[y * kS + x]; };
  for (int i = 0; i < kS * kS; ++i) mask[i] = 0.0f;

  switch (archetype) {
    case 0: {  // filled disk
      const float r = rng.uniform(3.5f, 5.0f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          at(y, x) = soft_edge(r - d);
        }
      }
      break;
    }
    case 1: {  // ring
      const float r = rng.uniform(4.0f, 5.5f);
      const float t = rng.uniform(1.0f, 1.6f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          at(y, x) = soft_edge(t - std::fabs(d - r));
        }
      }
      break;
    }
    case 2: {  // horizontal bars (period 4)
      const float phase = rng.uniform(0.0f, 4.0f);
      for (int y = 0; y < kS; ++y) {
        const float v =
            0.5f + 0.5f * std::sin(kTwoPi * (static_cast<float>(y) + phase) / 4.0f);
        for (int x = 0; x < kS; ++x) at(y, x) = v > 0.5f ? 1.0f : 0.0f;
      }
      break;
    }
    case 3: {  // vertical bars (period 4)
      const float phase = rng.uniform(0.0f, 4.0f);
      for (int x = 0; x < kS; ++x) {
        const float v =
            0.5f + 0.5f * std::sin(kTwoPi * (static_cast<float>(x) + phase) / 4.0f);
        for (int y = 0; y < kS; ++y) at(y, x) = v > 0.5f ? 1.0f : 0.0f;
      }
      break;
    }
    case 4: {  // diagonal stripes (period 6 along x+y)
      const float phase = rng.uniform(0.0f, 6.0f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float v = 0.5f + 0.5f * std::sin(kTwoPi *
                                                 (static_cast<float>(x + y) + phase) /
                                                 6.0f);
          at(y, x) = v > 0.5f ? 1.0f : 0.0f;
        }
      }
      break;
    }
    case 5: {  // checkerboard, cell 4
      const int px = rng.uniform_int(0, 3);
      const int py = rng.uniform_int(0, 3);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          at(y, x) = (((x + px) / 4 + (y + py) / 4) % 2 == 0) ? 1.0f : 0.0f;
        }
      }
      break;
    }
    case 6: {  // two gaussian blobs
      const float sep = rng.uniform(3.0f, 4.5f);
      const float sig = rng.uniform(1.4f, 2.0f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d1 = ((x - (cx - sep)) * (x - (cx - sep)) +
                            (y - cy) * (y - cy));
          const float d2 = ((x - (cx + sep)) * (x - (cx + sep)) +
                            (y - cy) * (y - cy));
          const float v = std::exp(-d1 / (2 * sig * sig)) +
                          std::exp(-d2 / (2 * sig * sig));
          at(y, x) = v > 1.0f ? 1.0f : v;
        }
      }
      break;
    }
    case 7: {  // triangle wedge
      const float s = rng.uniform(5.0f, 7.0f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float u = static_cast<float>(x) - cx + s / 2;
          const float v = static_cast<float>(y) - cy + s / 2;
          const float inside =
              std::min(std::min(u, v), s - (u + v));
          at(y, x) = soft_edge(inside);
        }
      }
      break;
    }
    case 8: {  // axis-aligned cross
      const float w = rng.uniform(1.2f, 1.8f);
      const float ext = rng.uniform(5.0f, 6.5f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float ax = std::fabs(static_cast<float>(x) - cx);
          const float ay = std::fabs(static_cast<float>(y) - cy);
          const float arm1 = std::min(w - ax, ext - ay);
          const float arm2 = std::min(w - ay, ext - ax);
          at(y, x) = soft_edge(std::max(arm1, arm2));
        }
      }
      break;
    }
    case 9: {  // diamond
      const float r = rng.uniform(4.0f, 5.5f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d = std::fabs(static_cast<float>(x) - cx) +
                          std::fabs(static_cast<float>(y) - cy);
          at(y, x) = soft_edge(r - d);
        }
      }
      break;
    }
    case 10: {  // X (diagonal cross) — OoD pool starts here
      const float w = rng.uniform(1.2f, 1.8f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float u = static_cast<float>(x) - cx;
          const float v = static_cast<float>(y) - cy;
          const float d = std::min(std::fabs(u - v), std::fabs(u + v));
          const float ext = 6.5f - std::max(std::fabs(u), std::fabs(v));
          at(y, x) = soft_edge(std::min(w - d, ext));
        }
      }
      break;
    }
    case 11: {  // half disk
      const float r = rng.uniform(4.0f, 5.5f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          const float half = cx - static_cast<float>(x);
          at(y, x) = soft_edge(std::min(r - d, half));
        }
      }
      break;
    }
    case 12: {  // three dots in a row
      const float sep = rng.uniform(4.0f, 5.0f);
      const float sig = rng.uniform(1.1f, 1.5f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          float v = 0.0f;
          for (int k = -1; k <= 1; ++k) {
            const float dx = static_cast<float>(x) - (cx + sep * k);
            const float dy = static_cast<float>(y) - cy;
            v += std::exp(-(dx * dx + dy * dy) / (2 * sig * sig));
          }
          at(y, x) = v > 1.0f ? 1.0f : v;
        }
      }
      break;
    }
    case 13: {  // square frame
      const float r = rng.uniform(4.0f, 5.5f);
      const float t = rng.uniform(1.0f, 1.5f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d = std::max(std::fabs(static_cast<float>(x) - cx),
                                   std::fabs(static_cast<float>(y) - cy));
          at(y, x) = soft_edge(t - std::fabs(d - r));
        }
      }
      break;
    }
    case 14: {  // single thick vertical bar
      const float w = rng.uniform(2.0f, 3.0f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          at(y, x) = soft_edge(w - std::fabs(static_cast<float>(x) - cx));
        }
      }
      break;
    }
    case 15: {  // dot inside ring
      const float r = rng.uniform(4.5f, 6.0f);
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float d = std::hypot(static_cast<float>(x) - cx,
                                     static_cast<float>(y) - cy);
          const float ring = soft_edge(1.1f - std::fabs(d - r));
          const float dot = soft_edge(2.0f - d);
          at(y, x) = std::max(ring, dot);
        }
      }
      break;
    }
    default:
      break;
  }
}

namespace {

std::vector<Tensor> make_patterns(int count, std::uint64_t seed) {
  std::vector<Tensor> out;
  out.reserve(static_cast<std::size_t>(count));
  Rng rng(seed, /*stream=*/0x9E3779B9ULL);
  for (int c = 0; c < count; ++c) {
    Tensor p({3, kS, kS});
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      p[i] = rng.bernoulli(0.5f) ? 1.0f : -1.0f;
    }
    out.push_back(std::move(p));
  }
  return out;
}

}  // namespace

SynthTaskSpec source_task_spec() {
  SynthTaskSpec spec;
  spec.name = "synth-imagenet";
  spec.num_classes = 10;
  spec.shift = 0.0f;
  spec.pattern_amplitude = 0.07f;
  spec.seed = kSourceSeed;
  Rng rng(spec.seed);
  for (int c = 0; c < spec.num_classes; ++c) {
    ClassSpec cs;
    cs.archetype = c;
    cs.color = hue_to_color(0.618034f * static_cast<float>(c));
    spec.classes.push_back(cs);
  }
  spec.patterns = make_patterns(spec.num_classes, spec.seed);
  return spec;
}

SynthTaskSpec downstream_task_spec(const std::string& name, int num_classes,
                                   float shift, std::uint64_t seed) {
  if (shift < 0.0f || shift > 1.0f) {
    throw std::invalid_argument("downstream_task_spec: shift out of [0,1]");
  }
  const SynthTaskSpec source = source_task_spec();
  SynthTaskSpec spec;
  spec.name = name;
  spec.num_classes = num_classes;
  spec.shift = shift;
  spec.seed = seed;
  Rng rng(seed, /*stream=*/0xD15EA5EULL);
  for (int c = 0; c < num_classes; ++c) {
    ClassSpec cs;
    cs.archetype = c % 10;  // downstream tasks reuse the source shape pool
    // Class tint rotates away from the source archetype's hue by an angle
    // proportional to shift (random direction, deterministic magnitude):
    // shift 0 => downstream classes look like source classes, so source
    // features transfer directly; shift 1 => full appearance gap.
    const float source_hue = 0.618034f * static_cast<float>(cs.archetype);
    const float direction = rng.bernoulli(0.5f) ? 1.0f : -1.0f;
    const float hue = source_hue + direction * shift * rng.uniform(0.25f, 0.45f);
    cs.color = hue_to_color(hue);
    spec.classes.push_back(cs);
    // The brittle cue of a downstream class is the SOURCE pattern of its
    // archetype; corruption below decorrelates it in proportion to shift.
    spec.patterns.push_back(source.patterns[static_cast<std::size_t>(cs.archetype)]);
  }
  spec.pattern_amplitude = 0.07f * (1.0f - 0.3f * shift);
  spec.pattern_corruption = 0.5f * shift;
  // Deterministic magnitudes with random signs: the SIZE of the photometric
  // gap tracks shift exactly (so measured FID orders tasks like Tab. II),
  // while its direction stays task-specific.
  for (int ch = 0; ch < 3; ++ch) {
    const float gain_dir = rng.bernoulli(0.5f) ? 1.0f : -1.0f;
    const float bias_dir = rng.bernoulli(0.5f) ? 1.0f : -1.0f;
    spec.channel_gain[static_cast<std::size_t>(ch)] =
        1.0f + gain_dir * shift * rng.uniform(0.22f, 0.30f);
    spec.channel_bias[static_cast<std::size_t>(ch)] =
        bias_dir * shift * rng.uniform(0.04f, 0.07f);
  }
  spec.noise_sigma = 0.02f + 0.08f * shift;
  spec.texture_amplitude = 0.10f * shift;
  spec.texture_fx = rng.uniform(0.15f, 0.45f);
  spec.texture_fy = rng.uniform(0.15f, 0.45f);
  spec.texture_phase = rng.uniform(0.0f, kTwoPi);
  spec.position_jitter = 2.0f + 2.0f * shift;
  return spec;
}

Dataset generate_dataset(const SynthTaskSpec& spec, int n,
                         std::uint64_t sample_seed) {
  if (n <= 0) throw std::invalid_argument("generate_dataset: n must be > 0");
  if (spec.classes.empty() ||
      spec.classes.size() != spec.patterns.size()) {
    throw std::invalid_argument("generate_dataset: spec not built");
  }
  Dataset ds;
  ds.name = spec.name;
  ds.num_classes = spec.num_classes;
  ds.images = Tensor({n, 3, kS, kS});
  ds.labels.resize(static_cast<std::size_t>(n));

  Rng rng(sample_seed ^ (spec.seed * 0x9E3779B97F4A7C15ULL));
  std::vector<int> order = random_permutation(n, rng);

  for (int i = 0; i < n; ++i) {
    const int cls = i % spec.num_classes;  // balanced before shuffling
    const int slot = order[static_cast<std::size_t>(i)];
    ds.labels[static_cast<std::size_t>(slot)] = cls;
    const ClassSpec& cs = spec.classes[static_cast<std::size_t>(cls)];
    Rng inst = rng.split();

    const float cx = 7.5f + inst.uniform(-spec.position_jitter,
                                         spec.position_jitter);
    const float cy = 7.5f + inst.uniform(-spec.position_jitter,
                                         spec.position_jitter);
    float mask[kS * kS];
    render_archetype(cs.archetype, cx, cy, inst, mask);

    // Background: smooth gradient.
    const float b0 = inst.uniform(0.30f, 0.45f);
    const float gx = inst.uniform(-0.12f, 0.12f);
    const float gy = inst.uniform(-0.12f, 0.12f);
    const float amp = inst.uniform(0.40f, 0.60f);
    const Tensor& pattern = spec.patterns[static_cast<std::size_t>(cls)];

    float* img = ds.images.data() + static_cast<std::int64_t>(slot) * 3 * kS * kS;
    for (int ch = 0; ch < 3; ++ch) {
      const float color = cs.color[static_cast<std::size_t>(ch)];
      const float gain = spec.channel_gain[static_cast<std::size_t>(ch)];
      const float bias = spec.channel_bias[static_cast<std::size_t>(ch)];
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          float v = b0 + gx * (static_cast<float>(x) - 7.5f) / 8.0f +
                    gy * (static_cast<float>(y) - 7.5f) / 8.0f;
          v += amp * color * mask[y * kS + x];
          if (spec.texture_amplitude > 0.0f) {
            v += spec.texture_amplitude *
                 std::sin(kTwoPi * (spec.texture_fx * x + spec.texture_fy * y) +
                          spec.texture_phase);
          }
          float p = pattern.data()[(ch * kS + y) * kS + x];
          if (spec.pattern_corruption > 0.0f &&
              inst.bernoulli(spec.pattern_corruption)) {
            p = -p;
          }
          v += spec.pattern_amplitude * p;
          v = v * gain + bias;
          v += inst.normal(0.0f, spec.noise_sigma);
          img[(ch * kS + y) * kS + x] = std::clamp(v, 0.0f, 1.0f);
        }
      }
    }
  }
  return ds;
}

Dataset generate_ood_dataset(int n, std::uint64_t seed) {
  SynthTaskSpec spec;
  spec.name = "synth-ood";
  spec.num_classes = 6;
  spec.seed = seed;
  spec.noise_sigma = 0.04f;
  spec.pattern_amplitude = 0.0f;
  Rng rng(seed, /*stream=*/0x0DDBA11ULL);
  for (int c = 0; c < spec.num_classes; ++c) {
    ClassSpec cs;
    cs.archetype = 10 + c;  // archetypes never used by classification tasks
    cs.color = hue_to_color(rng.uniform());
    spec.classes.push_back(cs);
    spec.patterns.push_back(Tensor({3, kS, kS}));  // zero pattern
  }
  Dataset ds = generate_dataset(spec, n, seed ^ 0xBADC0DEULL);
  // OoD labels carry no meaning for detection; collapse them.
  for (auto& l : ds.labels) l = 0;
  ds.num_classes = 1;
  return ds;
}

}  // namespace rt
