#include "data/corruptions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/loss.hpp"

namespace rt {
namespace {

void check_severity(int severity) {
  if (severity < 1 || severity > kCorruptionSeverities) {
    throw std::invalid_argument("corruption severity must be in [1, 5]");
  }
}

void check_images(const Tensor& images) {
  if (images.ndim() != 4) {
    throw std::invalid_argument("apply_corruption: (N,C,H,W) images required");
  }
}

// Severity tables (index severity-1). Calibrated so that severity 5 of every
// family visibly degrades a clean micro-model while severity 1 is mild.
constexpr float kNoiseSigma[] = {0.03f, 0.06f, 0.10f, 0.14f, 0.19f};
constexpr float kImpulseFrac[] = {0.01f, 0.02f, 0.04f, 0.07f, 0.10f};
constexpr int kBlurRepeats[] = {1, 2, 3, 4, 5};
constexpr float kContrastFactor[] = {0.80f, 0.65f, 0.50f, 0.35f, 0.25f};
constexpr float kBrightnessDelta[] = {0.06f, 0.11f, 0.16f, 0.22f, 0.28f};
constexpr int kPixelateBlock[] = {2, 2, 4, 4, 8};
constexpr float kOcclusionFrac[] = {0.25f, 0.35f, 0.45f, 0.55f, 0.65f};

Tensor gaussian_noise(const Tensor& images, float sigma, Rng& rng) {
  Tensor out = images;
  float* d = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    d[i] += rng.normal(0.0f, sigma);
  }
  return out;
}

Tensor impulse_noise(const Tensor& images, float fraction, Rng& rng) {
  Tensor out = images;
  const std::int64_t n = out.dim(0), c = out.dim(1), h = out.dim(2),
                     w = out.dim(3);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        if (!rng.bernoulli(fraction)) continue;
        const float v = rng.bernoulli(0.5f) ? 1.0f : 0.0f;
        for (std::int64_t ch = 0; ch < c; ++ch) out.at(i, ch, y, x) = v;
      }
    }
  }
  return out;
}

Tensor contrast(const Tensor& images, float factor) {
  Tensor out = images;
  const std::int64_t n = out.dim(0);
  const std::int64_t per_image = out.numel() / n;
  float* d = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float* img = d + i * per_image;
    double mean = 0.0;
    for (std::int64_t k = 0; k < per_image; ++k) mean += img[k];
    const float m = static_cast<float>(mean / static_cast<double>(per_image));
    for (std::int64_t k = 0; k < per_image; ++k) {
      img[k] = m + (img[k] - m) * factor;
    }
  }
  return out;
}

Tensor pixelate(const Tensor& images, int block) {
  Tensor out = images;
  const std::int64_t n = out.dim(0), c = out.dim(1), h = out.dim(2),
                     w = out.dim(3);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t by = 0; by < h; by += block) {
        for (std::int64_t bx = 0; bx < w; bx += block) {
          const std::int64_t ey = std::min<std::int64_t>(by + block, h);
          const std::int64_t ex = std::min<std::int64_t>(bx + block, w);
          float acc = 0.0f;
          for (std::int64_t y = by; y < ey; ++y) {
            for (std::int64_t x = bx; x < ex; ++x) {
              acc += images.at(i, ch, y, x);
            }
          }
          const float v =
              acc / static_cast<float>((ey - by) * (ex - bx));
          for (std::int64_t y = by; y < ey; ++y) {
            for (std::int64_t x = bx; x < ex; ++x) out.at(i, ch, y, x) = v;
          }
        }
      }
    }
  }
  return out;
}

Tensor occlusion(const Tensor& images, float side_fraction, Rng& rng) {
  Tensor out = images;
  const std::int64_t n = out.dim(0), c = out.dim(1), h = out.dim(2),
                     w = out.dim(3);
  const std::int64_t side = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::round(side_fraction *
                        static_cast<float>(std::min(h, w)))));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t y0 =
        rng.next_below(static_cast<std::uint32_t>(h - side + 1));
    const std::int64_t x0 =
        rng.next_below(static_cast<std::uint32_t>(w - side + 1));
    for (std::int64_t ch = 0; ch < c; ++ch) {
      for (std::int64_t y = y0; y < y0 + side; ++y) {
        for (std::int64_t x = x0; x < x0 + side; ++x) {
          out.at(i, ch, y, x) = 0.5f;  // neutral gray patch
        }
      }
    }
  }
  return out;
}

}  // namespace

const std::vector<CorruptionType>& corruption_suite() {
  static const std::vector<CorruptionType> suite{
      CorruptionType::kGaussianNoise, CorruptionType::kImpulseNoise,
      CorruptionType::kMeanBlur,      CorruptionType::kContrast,
      CorruptionType::kBrightness,    CorruptionType::kPixelate,
      CorruptionType::kOcclusion,
  };
  return suite;
}

const char* corruption_name(CorruptionType type) {
  switch (type) {
    case CorruptionType::kGaussianNoise: return "gaussian_noise";
    case CorruptionType::kImpulseNoise: return "impulse_noise";
    case CorruptionType::kMeanBlur: return "mean_blur";
    case CorruptionType::kContrast: return "contrast";
    case CorruptionType::kBrightness: return "brightness";
    case CorruptionType::kPixelate: return "pixelate";
    case CorruptionType::kOcclusion: return "occlusion";
  }
  return "unknown";
}

Tensor apply_corruption(const Tensor& images, CorruptionType type,
                        int severity, std::uint64_t seed) {
  check_images(images);
  check_severity(severity);
  const int s = severity - 1;
  // Stream keyed by (type, severity) so different cells are independent.
  Rng rng(seed, 0x9e3779b97f4a7c15ULL ^
                    (static_cast<std::uint64_t>(type) * 31 +
                     static_cast<std::uint64_t>(severity)));
  Tensor out;
  switch (type) {
    case CorruptionType::kGaussianNoise:
      out = gaussian_noise(images, kNoiseSigma[s], rng);
      break;
    case CorruptionType::kImpulseNoise:
      out = impulse_noise(images, kImpulseFrac[s], rng);
      break;
    case CorruptionType::kMeanBlur: {
      out = images;
      for (int r = 0; r < kBlurRepeats[s]; ++r) out = mean_blur3(out);
      break;
    }
    case CorruptionType::kContrast:
      out = contrast(images, kContrastFactor[s]);
      break;
    case CorruptionType::kBrightness:
      out = images;
      out.add_(kBrightnessDelta[s]);
      break;
    case CorruptionType::kPixelate:
      out = pixelate(images, kPixelateBlock[s]);
      break;
    case CorruptionType::kOcclusion:
      out = occlusion(images, kOcclusionFrac[s], rng);
      break;
  }
  out.clamp_(0.0f, 1.0f);
  return out;
}

Dataset corrupt_with(const Dataset& clean, CorruptionType type, int severity,
                     std::uint64_t seed) {
  Dataset out;
  out.images = apply_corruption(clean.images, type, severity, seed);
  out.labels = clean.labels;
  out.num_classes = clean.num_classes;
  out.name = clean.name + "+" + corruption_name(type) + "@" +
             std::to_string(severity);
  return out;
}

float CorruptionReport::family_mean(std::size_t type_index) const {
  const auto& row = accuracy.at(type_index);
  float acc = 0.0f;
  for (float a : row) acc += a;
  return row.empty() ? 0.0f : acc / static_cast<float>(row.size());
}

namespace {

// Local accuracy loop (data must not depend on train/, which depends on us).
float dataset_accuracy(Module& model, const Dataset& data, int batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  std::int64_t correct = 0;
  for (const auto& batch :
       make_eval_batches(static_cast<int>(data.size()), batch_size)) {
    const Tensor x = gather_images(data.images, batch);
    const Tensor logits = model.forward(x);
    const std::vector<int> pred = argmax_rows(logits);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (pred[i] == data.labels[static_cast<std::size_t>(batch[i])]) {
        ++correct;
      }
    }
  }
  model.set_training(was_training);
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

}  // namespace

CorruptionReport evaluate_corruption_suite(Module& model, const Dataset& clean,
                                           std::uint64_t seed,
                                           int batch_size) {
  CorruptionReport report;
  report.clean_accuracy = dataset_accuracy(model, clean, batch_size);
  double total = 0.0;
  int cells = 0;
  for (CorruptionType type : corruption_suite()) {
    std::vector<float> row;
    row.reserve(kCorruptionSeverities);
    for (int s = 1; s <= kCorruptionSeverities; ++s) {
      const Dataset corrupted = corrupt_with(clean, type, s, seed);
      const float acc = dataset_accuracy(model, corrupted, batch_size);
      row.push_back(acc);
      total += acc;
      ++cells;
    }
    report.accuracy.push_back(std::move(row));
  }
  report.mean_corruption_accuracy =
      static_cast<float>(total / static_cast<double>(cells));
  return report;
}

}  // namespace rt
