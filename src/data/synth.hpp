#pragma once
// SynthVision: procedural image tasks with a controllable domain gap.
//
// Every class is defined by two cues:
//   * a ROBUST cue    — a low-frequency shape archetype (disk, bars, ring...)
//     rendered with instance jitter; survives small perturbations;
//   * a BRITTLE cue   — a fixed class-correlated high-frequency +-1
//     micro-pattern added at small amplitude (default 0.06).
//
// This mirrors the mechanism the paper leans on ([4],[19]): natural training
// happily exploits the high-SNR brittle shortcut, while PGD adversarial
// training with eps >= the pattern amplitude can invert the shortcut
// adversarially and therefore forces reliance on shapes. Downstream tasks
// corrupt the brittle cue and shift photometrics in proportion to a `shift`
// knob in [0,1]; FID against the source grows monotonically with shift, so
// the paper's FID-vs-winner analysis (Fig. 9 / Tab. II) can be reproduced.

#include <array>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace rt {

/// Number of distinct shape archetypes implemented by the renderer.
/// Archetypes [0, 10) are used by classification tasks; [10, 16) are reserved
/// for out-of-distribution data.
constexpr int kNumArchetypes = 16;

/// Side length of generated images (3 x kImageSize x kImageSize).
constexpr int kImageSize = 16;

/// Bumped whenever the generative process changes; cached pretrained
/// checkpoints embed it so stale models are never reused on new data.
constexpr int kDataVersion = 2;

/// Visual identity of one class.
struct ClassSpec {
  int archetype = 0;
  std::array<float, 3> color{1.0f, 1.0f, 1.0f};  ///< per-channel shape tint
};

/// Complete recipe for generating a classification task. Build specs through
/// source_task_spec() / downstream_task_spec() so the knobs stay consistent.
struct SynthTaskSpec {
  std::string name;
  int num_classes = 10;
  float shift = 0.0f;        ///< domain gap knob in [0, 1]; 0 == source stats
  std::uint64_t seed = 1;    ///< task identity (classes, patterns, photometry)

  std::vector<ClassSpec> classes;
  std::vector<Tensor> patterns;  ///< per-class (3,S,S) +-1 brittle patterns
  float pattern_amplitude = 0.07f;
  float pattern_corruption = 0.0f;  ///< per-pixel sign-flip probability
  std::array<float, 3> channel_gain{1.0f, 1.0f, 1.0f};
  std::array<float, 3> channel_bias{0.0f, 0.0f, 0.0f};
  float noise_sigma = 0.02f;
  float texture_amplitude = 0.0f;  ///< task-specific background sinusoid
  float texture_fx = 0.0f, texture_fy = 0.0f, texture_phase = 0.0f;
  float position_jitter = 2.0f;    ///< shape centre jitter in pixels
};

/// The canonical source task (the ImageNet stand-in): 10 classes, archetypes
/// 0..9, clean photometry, fully class-correlated brittle patterns.
SynthTaskSpec source_task_spec();

/// A downstream task with the given domain gap. Classes reuse archetypes
/// 0..9 (cycled) with task-specific tints; the brittle pattern of a class is
/// the SOURCE pattern of its archetype, corrupted per image with probability
/// 0.5 * shift — so at shift 0 the source's shortcut features transfer
/// perfectly and at shift 1 the shortcut is destroyed.
SynthTaskSpec downstream_task_spec(const std::string& name, int num_classes,
                                   float shift, std::uint64_t seed);

/// Renders `n` labelled samples of the task (balanced classes, shuffled).
Dataset generate_dataset(const SynthTaskSpec& spec, int n,
                         std::uint64_t sample_seed);

/// Out-of-distribution images: unseen archetypes (10..15), random tints, no
/// class-correlated patterns. Labels are all zero and meaningless.
Dataset generate_ood_dataset(int n, std::uint64_t seed);

/// Soft [0,1] support mask of one archetype instance; used by both the
/// classification renderer and the segmentation dataset. `mask` must hold
/// kImageSize^2 floats. cx/cy are the instance centre.
void render_archetype(int archetype, float cx, float cy, Rng& instance_rng,
                      float* mask);

}  // namespace rt
