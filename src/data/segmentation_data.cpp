#include "data/segmentation_data.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/synth.hpp"

namespace rt {

namespace {
constexpr int kS = kImageSize;
// Shape classes for segmentation: disk, diamond, cross (archetypes 0, 9, 8).
constexpr int kSegArchetypes[3] = {0, 9, 8};
}  // namespace

SegDataset generate_segmentation_dataset(int n, float shift,
                                         std::uint64_t seed) {
  if (n <= 0) throw std::invalid_argument("segmentation: n must be > 0");
  SegDataset ds;
  ds.name = "synth-voc";
  ds.images = Tensor({n, 3, kS, kS});
  ds.labels.assign(static_cast<std::size_t>(n) * kS * kS, 0);

  Rng rng(seed ^ 0x5E6E57A71ULL);
  const float noise_sigma = 0.02f + 0.06f * shift;
  const float gain_r = 1.0f + shift * rng.uniform(-0.3f, 0.3f);
  const float gain_g = 1.0f + shift * rng.uniform(-0.3f, 0.3f);
  const float gain_b = 1.0f + shift * rng.uniform(-0.3f, 0.3f);
  const float gains[3] = {gain_r, gain_g, gain_b};

  for (int i = 0; i < n; ++i) {
    Rng inst = rng.split();
    const int num_shapes = inst.uniform_int(1, 3);

    // Background.
    const float b0 = inst.uniform(0.30f, 0.45f);
    const float gx = inst.uniform(-0.12f, 0.12f);
    const float gy = inst.uniform(-0.12f, 0.12f);
    float* img = ds.images.data() + static_cast<std::int64_t>(i) * 3 * kS * kS;
    for (int ch = 0; ch < 3; ++ch) {
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          img[(ch * kS + y) * kS + x] =
              b0 + gx * (static_cast<float>(x) - 7.5f) / 8.0f +
              gy * (static_cast<float>(y) - 7.5f) / 8.0f;
        }
      }
    }

    int* lbl = ds.labels.data() + static_cast<std::int64_t>(i) * kS * kS;
    for (int s = 0; s < num_shapes; ++s) {
      const int cls = inst.uniform_int(0, 2);  // 0..2 -> label cls+1
      const float cx = inst.uniform(4.0f, 11.0f);
      const float cy = inst.uniform(4.0f, 11.0f);
      float mask[kS * kS];
      render_archetype(kSegArchetypes[cls], cx, cy, inst, mask);
      const float amp = inst.uniform(0.40f, 0.60f);
      const float hue = inst.uniform();
      // Same hue->color convention as the classification renderer.
      float color[3];
      for (int ch = 0; ch < 3; ++ch) {
        color[ch] = 0.55f + 0.45f * std::sin(
            6.2831853f * (hue + static_cast<float>(ch) / 3.0f));
      }
      for (int y = 0; y < kS; ++y) {
        for (int x = 0; x < kS; ++x) {
          const float m = mask[y * kS + x];
          if (m <= 0.0f) continue;
          for (int ch = 0; ch < 3; ++ch) {
            img[(ch * kS + y) * kS + x] += amp * color[ch] * m;
          }
          if (m > 0.5f) lbl[y * kS + x] = cls + 1;
        }
      }
    }

    for (int ch = 0; ch < 3; ++ch) {
      for (int px = 0; px < kS * kS; ++px) {
        float v = img[ch * kS * kS + px] * gains[ch];
        v += inst.normal(0.0f, noise_sigma);
        img[ch * kS * kS + px] = std::clamp(v, 0.0f, 1.0f);
      }
    }
  }
  return ds;
}

double mean_iou(const std::vector<int>& pred, const std::vector<int>& truth,
                int num_classes) {
  if (pred.size() != truth.size() || pred.empty()) {
    throw std::invalid_argument("mean_iou: size mismatch");
  }
  double iou_sum = 0.0;
  int counted = 0;
  for (int c = 0; c < num_classes; ++c) {
    std::int64_t inter = 0, uni = 0;
    for (std::size_t i = 0; i < pred.size(); ++i) {
      const bool p = pred[i] == c;
      const bool t = truth[i] == c;
      if (p && t) ++inter;
      if (p || t) ++uni;
    }
    if (uni == 0) continue;  // class absent everywhere
    iou_sum += static_cast<double>(inter) / static_cast<double>(uni);
    ++counted;
  }
  return counted > 0 ? iou_sum / counted : 0.0;
}

}  // namespace rt
