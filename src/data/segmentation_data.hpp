#pragma once
// Synthetic dense-prediction dataset (PASCAL-VOC stand-in for Fig. 7).
//
// Each image contains 1-3 shapes from a 3-class palette placed on a
// source-style background; the label map assigns each pixel its shape class
// (or 0 for background). Appearance uses the same renderer as the
// classification tasks, with a moderate domain shift so the transfer setting
// is non-trivial.

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace rt {

/// Labelled dense-prediction data. Labels are row-major (n, y, x), values in
/// [0, num_classes) — 0 is background.
struct SegDataset {
  Tensor images;            ///< (N, 3, S, S)
  std::vector<int> labels;  ///< N * S * S
  int num_classes = 4;      ///< background + 3 shape classes
  std::string name;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Generates `n` segmentation samples. `shift` moves the appearance away
/// from source statistics exactly like classification tasks do.
SegDataset generate_segmentation_dataset(int n, float shift,
                                         std::uint64_t seed);

/// Mean intersection-over-union of predicted label maps vs ground truth.
/// `pred` and `truth` are flat (n*S*S) label arrays. Classes absent from
/// both prediction and truth are skipped in the mean.
double mean_iou(const std::vector<int>& pred, const std::vector<int>& truth,
                int num_classes);

}  // namespace rt
