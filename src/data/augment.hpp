#pragma once
// Training-time data augmentation (random horizontal flip + shift-with-pad),
// the standard recipe of the paper's finetuning protocol.

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rt {

struct AugmentConfig {
  bool horizontal_flip = true;
  int max_shift = 2;  ///< uniform shift in [-max_shift, max_shift] per axis
  bool enabled() const { return horizontal_flip || max_shift > 0; }
};

/// Returns an augmented copy of a batch (N,3,H,W). Each sample draws its own
/// flip/shift; shifted-in pixels are zero-padded.
Tensor augment_batch(const Tensor& images, const AugmentConfig& config,
                     Rng& rng);

/// Horizontally mirrors one sample in place.
void flip_horizontal(Tensor& images, std::int64_t sample);

/// Shifts one sample by (dy, dx) with zero padding, in place.
void shift_image(Tensor& images, std::int64_t sample, int dy, int dx);

}  // namespace rt
