#pragma once
// Dataset container, minibatching, and test-time corruption transforms.

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace rt {

/// An in-memory labelled image dataset (NCHW, values in [0, 1]).
struct Dataset {
  Tensor images;            ///< (N, 3, H, W)
  std::vector<int> labels;  ///< size N, in [0, num_classes)
  int num_classes = 0;
  std::string name;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Returns shuffled minibatch index lists covering [0, n) once.
/// The final batch may be smaller than batch_size.
std::vector<std::vector<int>> make_batches(int n, int batch_size, Rng& rng);

/// Deterministic (unshuffled) batches for evaluation.
std::vector<std::vector<int>> make_eval_batches(int n, int batch_size);

/// Gathers the given rows of an (N, ...) tensor into a new tensor.
Tensor gather_images(const Tensor& images, const std::vector<int>& indices);

/// Gathers labels at the given indices.
std::vector<int> gather_labels(const std::vector<int>& labels,
                               const std::vector<int>& indices);

/// Test-time corruption for Crpt-Acc (Fig. 8): additive Gaussian noise and an
/// optional 3x3 mean blur, clamped back to [0, 1].
Dataset corrupt_dataset(const Dataset& clean, float noise_sigma, bool blur,
                        std::uint64_t seed);

/// Applies a 3x3 mean blur (zero-padded borders) to every image.
Tensor mean_blur3(const Tensor& images);

}  // namespace rt
