#include "data/augment.hpp"

#include <algorithm>
#include <vector>

namespace rt {

void flip_horizontal(Tensor& images, std::int64_t sample) {
  const std::int64_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  for (std::int64_t ch = 0; ch < c; ++ch) {
    float* plane = images.data() + (sample * c + ch) * h * w;
    for (std::int64_t y = 0; y < h; ++y) {
      float* row = plane + y * w;
      std::reverse(row, row + w);
    }
  }
}

void shift_image(Tensor& images, std::int64_t sample, int dy, int dx) {
  const std::int64_t c = images.dim(1), h = images.dim(2), w = images.dim(3);
  std::vector<float> buffer(static_cast<std::size_t>(h * w));
  for (std::int64_t ch = 0; ch < c; ++ch) {
    float* plane = images.data() + (sample * c + ch) * h * w;
    std::fill(buffer.begin(), buffer.end(), 0.0f);
    for (std::int64_t y = 0; y < h; ++y) {
      const std::int64_t sy = y - dy;
      if (sy < 0 || sy >= h) continue;
      for (std::int64_t x = 0; x < w; ++x) {
        const std::int64_t sx = x - dx;
        if (sx < 0 || sx >= w) continue;
        buffer[static_cast<std::size_t>(y * w + x)] = plane[sy * w + sx];
      }
    }
    std::copy(buffer.begin(), buffer.end(), plane);
  }
}

Tensor augment_batch(const Tensor& images, const AugmentConfig& config,
                     Rng& rng) {
  Tensor out = images;
  if (!config.enabled()) return out;
  for (std::int64_t i = 0; i < out.dim(0); ++i) {
    if (config.horizontal_flip && rng.bernoulli(0.5f)) {
      flip_horizontal(out, i);
    }
    if (config.max_shift > 0) {
      const int dy = rng.uniform_int(-config.max_shift, config.max_shift);
      const int dx = rng.uniform_int(-config.max_shift, config.max_shift);
      if (dy != 0 || dx != 0) shift_image(out, i, dy, dx);
    }
  }
  return out;
}

}  // namespace rt
