#pragma once
// Synthetic object-detection dataset (the Fig. 7(a) stand-in).
//
// Fig. 7 of the paper has two panels: (a) object detection and (b)
// segmentation on PASCAL VOC. This dataset provides the detection half:
// each image contains 1-3 shapes from the same 3-class palette as the
// segmentation task, with axis-aligned ground-truth boxes derived from the
// rendered shape support. The same `shift` knob controls the domain gap.

#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace rt {

/// Axis-aligned box in pixel coordinates, [x0, x1) x [y0, y1).
struct BoxF {
  float x0 = 0.0f, y0 = 0.0f, x1 = 0.0f, y1 = 0.0f;

  float area() const {
    return (x1 > x0 && y1 > y0) ? (x1 - x0) * (y1 - y0) : 0.0f;
  }
  float cx() const { return 0.5f * (x0 + x1); }
  float cy() const { return 0.5f * (y0 + y1); }
};

/// Intersection-over-union of two boxes (0 when either is empty).
double box_iou(const BoxF& a, const BoxF& b);

/// One ground-truth object.
struct DetObject {
  BoxF box;
  int cls = 0;  ///< in [0, num_classes)
};

struct DetDataset {
  Tensor images;  ///< (N, 3, S, S)
  std::vector<std::vector<DetObject>> objects;  ///< per image
  int num_classes = 3;
  std::string name;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Generates `n` detection samples at the given domain shift. Object
/// centres are spaced so that no two objects of one image share a stride-2
/// feature cell (the detector's assignment unit).
DetDataset generate_detection_dataset(int n, float shift, std::uint64_t seed);

}  // namespace rt
