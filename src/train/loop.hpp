#pragma once
// Generic classification training/evaluation loops.
//
// Shared by pretraining, IMP inner training, finetuning and linear
// evaluation. Works on any Module mapping (N,3,H,W) -> (N,C) logits.

#include <vector>

#include "attack/attack.hpp"
#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "engine/engine.hpp"
#include "nn/optim.hpp"
#include "serving/serving.hpp"

namespace rt {

struct TrainLoopConfig {
  int epochs = 10;
  int batch_size = 32;
  SgdConfig sgd{0.05f, 0.9f, 1e-4f};
  /// Epochs at which the learning rate is multiplied by lr_gamma (the paper
  /// decays by 0.1 at 1/3 and 2/3 of training; callers pass scaled values).
  std::vector<int> lr_milestones;
  float lr_gamma = 0.1f;

  // Objective modifiers (mutually exclusive; checked in this order).
  bool adversarial = false;      ///< PGD minimax objective (Eq. 1)
  AttackConfig attack;
  float trades_beta = 0.0f;      ///< >0: TRADES objective with this beta
  int free_replays = 0;          ///< >1: Free-AT with m batch replays
  float gaussian_sigma = 0.0f;   ///< >0: randomized-smoothing augmentation
  /// Standard augmentation (flip/shift), applied before any adversarial or
  /// Gaussian perturbation. Disabled by default to keep micro-runs fast.
  AugmentConfig augment{false, 0};

  bool verbose = false;          ///< per-epoch loss/accuracy to stdout
};

struct TrainStats {
  float final_loss = 0.0f;
  float final_train_accuracy = 0.0f;
};

/// Trains `model` in place on `train` with SGD over `params` (pass
/// model.parameters() for whole-model training, or a subset to freeze the
/// rest). Masked parameters stay masked throughout.
TrainStats train_classifier(Module& model, std::vector<Parameter*> params,
                            const Dataset& train, const TrainLoopConfig& config,
                            Rng& rng);

/// Convenience overload training all parameters.
TrainStats train_classifier(Module& model, const Dataset& train,
                            const TrainLoopConfig& config, Rng& rng);

/// Top-1 accuracy on a dataset (eval mode; mode restored afterwards).
/// Training-time convenience; gradient-free consumers should compile the
/// model once and use the Session overload below.
float evaluate_accuracy(Module& model, const Dataset& test,
                        int batch_size = 64);

/// Top-1 accuracy through a compiled engine Session — the serving path for
/// read-only evaluation (no Module state is touched).
float evaluate_accuracy(Session& session, const Dataset& test);

/// Top-1 accuracy through the async serving front-end: the dataset is
/// submitted as one request, the coalescer splits it into max_batch
/// micro-batches round-robined across the shards. Chunk boundaries match the
/// Session overload's, so the result is bitwise the same accuracy.
float evaluate_accuracy(serving::Server& server, const Dataset& test);

/// Softmax probabilities for the whole dataset (eval mode), shape (N, C).
Tensor predict_probabilities(Module& model, const Dataset& data,
                             int batch_size = 64);

/// Softmax probabilities through a compiled engine Session.
Tensor predict_probabilities(Session& session, const Dataset& data);

/// Softmax probabilities through the async serving front-end.
Tensor predict_probabilities(serving::Server& server, const Dataset& data);

/// Accuracy under PGD attack (Adv-Acc). Inherently eager: the attack needs
/// input gradients, which only the Module backward path provides.
float evaluate_adversarial_accuracy(Module& model, const Dataset& test,
                                    const AttackConfig& attack, Rng& rng,
                                    int batch_size = 64);

/// Compiles a classifier for read-only evaluation at the dataset's image
/// geometry and wraps it in a Session sized to batch_size.
Session make_eval_session(const ResNet& model, const Dataset& data,
                          int batch_size = 64);

/// Compiles a classifier at the dataset's geometry and stands up a
/// serving::Server over it: batch_size-row micro-batches, `shards` Session
/// replicas, no coalescing delay (bulk evaluation wants no artificial
/// latency), and an admission bound wide enough for whole-dataset requests.
serving::Server make_eval_server(const ResNet& model, const Dataset& data,
                                 int batch_size = 64, int shards = 1);

}  // namespace rt
