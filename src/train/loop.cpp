#include "train/loop.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "attack/trades.hpp"
#include "common/threadpool.hpp"
#include "nn/loss.hpp"

namespace rt {

TrainStats train_classifier(Module& model, std::vector<Parameter*> params,
                            const Dataset& train, const TrainLoopConfig& config,
                            Rng& rng) {
  Sgd sgd(std::move(params), config.sgd);
  const MultiStepLr schedule(config.sgd.lr, config.lr_milestones,
                             config.lr_gamma);
  const int n = static_cast<int>(train.size());
  TrainStats stats;
  FreePerturbation free_delta(config.attack.epsilon);
  const TradesConfig trades{config.trades_beta, config.attack};

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    sgd.set_lr(schedule.lr_at(epoch));
    double loss_acc = 0.0;
    std::int64_t correct = 0;
    const auto batches = make_batches(n, config.batch_size, rng);
    for (const auto& idx : batches) {
      Tensor x = gather_images(train.images, idx);
      const std::vector<int> y = gather_labels(train.labels, idx);
      if (config.augment.enabled()) {
        x = augment_batch(x, config.augment, rng);
      }

      float batch_loss = 0.0f;
      Tensor logits;
      if (config.adversarial) {
        x = pgd_attack(model, x, y, config.attack, rng);
      } else if (config.gaussian_sigma > 0.0f) {
        x = gaussian_augment(x, config.gaussian_sigma, rng);
      }

      if (config.trades_beta > 0.0f) {
        model.zero_grad();
        const TradesStepResult step = trades_step(model, x, y, trades, rng);
        sgd.step();
        batch_loss = step.loss;
        logits = step.clean_logits;
      } else if (config.free_replays > 1) {
        // Free-AT: replay the batch, recycling the input gradient of each
        // step to advance a persistent perturbation.
        model.set_training(true);
        for (int r = 0; r < config.free_replays; ++r) {
          const Tensor x_adv = free_delta.apply(x);
          model.zero_grad();
          logits = model.forward(x_adv);
          const LossResult loss = softmax_cross_entropy(logits, y);
          const Tensor input_grad = model.backward(loss.grad_logits);
          sgd.step();
          free_delta.update(input_grad);
          batch_loss = loss.loss;
        }
      } else {
        model.set_training(true);
        model.zero_grad();
        logits = model.forward(x);
        const LossResult loss = softmax_cross_entropy(logits, y);
        model.backward(loss.grad_logits);
        sgd.step();
        batch_loss = loss.loss;
      }

      loss_acc +=
          static_cast<double>(batch_loss) * static_cast<double>(idx.size());
      const auto pred = argmax_rows(logits);
      for (std::size_t i = 0; i < pred.size(); ++i) {
        if (pred[i] == y[i]) ++correct;
      }
    }
    stats.final_loss = static_cast<float>(loss_acc / n);
    stats.final_train_accuracy =
        static_cast<float>(correct) / static_cast<float>(n);
    if (config.verbose) {
      std::printf("  epoch %2d  lr %.4f  loss %.4f  acc %.4f\n", epoch,
                  sgd.lr(), stats.final_loss, stats.final_train_accuracy);
    }
  }
  return stats;
}

TrainStats train_classifier(Module& model, const Dataset& train,
                            const TrainLoopConfig& config, Rng& rng) {
  return train_classifier(model, model.parameters(), train, config, rng);
}

namespace {

std::int64_t count_correct(const std::vector<int>& pred,
                           const std::vector<int>& labels) {
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    if (pred[i] == labels[i]) ++correct;
  }
  return correct;
}

}  // namespace

float evaluate_accuracy(Session& session, const Dataset& test) {
  const auto n = static_cast<std::int64_t>(test.size());
  if (n <= 0) return 0.0f;
  // A shared-scheduler session already splits one whole-dataset predict into
  // max_batch chunk tasks with zero copies — use it directly. Same for a
  // single-lane scheduler, where sharding would pay gather copies for no
  // parallelism.
  if (session.shared_scheduler() ||
      Scheduler::current().num_threads() == 1) {
    const std::vector<int> pred = session.classify(test.images);
    return static_cast<float>(count_correct(pred, test.labels)) /
           static_cast<float>(test.size());
  }
  // Flat session on a multi-lane scheduler: shard the dataset into one task
  // per max_batch chunk ourselves (Session::predict is thread-safe; each
  // shard checks out its own workspace), gathering each shard into a
  // sub-batch tensor. Shard boundaries are fixed by max_batch and each
  // correct-count lands in its own slot before the serial sum, so the
  // result is independent of scheduling.
  const std::int64_t chunk = session.max_batch();
  const std::int64_t shards = (n + chunk - 1) / chunk;
  std::vector<std::int64_t> correct(static_cast<std::size_t>(shards), 0);
  parallel_for(
      shards,
      [&](std::int64_t s0, std::int64_t s1) {
        for (std::int64_t s = s0; s < s1; ++s) {
          const std::int64_t begin = s * chunk;
          const std::int64_t end = std::min<std::int64_t>(n, begin + chunk);
          const Tensor x = test.images.slice_rows(begin, end - begin);
          const std::vector<int> pred = session.classify(x);
          std::int64_t hits = 0;
          for (std::size_t i = 0; i < pred.size(); ++i) {
            if (pred[i] == test.labels[static_cast<std::size_t>(begin) + i]) {
              ++hits;
            }
          }
          correct[static_cast<std::size_t>(s)] = hits;
        }
      },
      /*grain=*/1);
  std::int64_t total = 0;
  for (const std::int64_t c : correct) total += c;
  return static_cast<float>(total) / static_cast<float>(test.size());
}

Tensor predict_probabilities(Session& session, const Dataset& data) {
  return session.predict_probabilities(data.images);
}

namespace {

/// Serves a whole (N, C, H, W) image batch through the front-end. Fitting
/// requests go out as one submission — the coalescer splits it into
/// max_batch-row micro-batches (the same chunk boundaries the Session
/// overload uses) round-robined across the shards; larger datasets are
/// served in blocking waves sized to half the admission bound. For bulk
/// evaluation ServerOverloaded is backpressure, not failure: a wave that
/// bounces (the server is shared with live traffic, or the dataset exceeds
/// the bound) is retried until the fleet has headroom, preserving the
/// Session overloads' any-size contract.
Tensor predict_dataset(serving::Server& server, const Tensor& images) {
  const std::int64_t n = images.dim(0);
  const std::int64_t wave =
      std::max<std::int64_t>(1, server.options().queue_capacity_rows / 2);
  const std::int64_t classes = server.shard_plan(0).num_classes();
  Tensor logits({n, classes});
  for (std::int64_t begin = 0; begin < n; begin += wave) {
    const std::int64_t rows = std::min(wave, n - begin);
    for (;;) {
      try {
        // Sliced (or copied, for the whole-set case) per attempt: predict()
        // consumes its argument even when the future carries the rejection.
        const Tensor part =
            server.predict(rows == n ? Tensor(images)
                                     : images.slice_rows(begin, rows));
        std::copy(part.data(), part.data() + part.numel(),
                  logits.data() + begin * classes);
        break;
      } catch (const serving::ServerOverloaded&) {
        // Poll for headroom before re-gathering: slicing the wave again is
        // a full copy, not worth paying while the fleet is saturated.
        while (server.stats().queued_rows + rows >
               server.options().queue_capacity_rows) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }
  }
  return logits;
}

}  // namespace

float evaluate_accuracy(serving::Server& server, const Dataset& test) {
  const auto n = static_cast<std::int64_t>(test.size());
  if (n <= 0) return 0.0f;
  const Tensor logits = predict_dataset(server, test.images);
  const std::vector<int> pred = argmax_rows(logits);
  return static_cast<float>(count_correct(pred, test.labels)) /
         static_cast<float>(test.size());
}

Tensor predict_probabilities(serving::Server& server, const Dataset& data) {
  return softmax(predict_dataset(server, data.images));
}

Session make_eval_session(const ResNet& model, const Dataset& data,
                          int batch_size) {
  CompileOptions options;
  options.height = data.images.dim(2);
  options.width = data.images.dim(3);
  // Evaluation is read-only bulk work: let concurrent predict() calls and
  // oversized batches chunk across the shared scheduler.
  SessionOptions session_options;
  session_options.max_batch = batch_size;
  session_options.shared_scheduler = true;
  return Session(Engine::compile(model, options), session_options);
}

serving::Server make_eval_server(const ResNet& model, const Dataset& data,
                                 int batch_size, int shards) {
  CompileOptions options;
  options.height = data.images.dim(2);
  options.width = data.images.dim(3);
  serving::ServerOptions server_options;
  server_options.shards = shards;
  server_options.max_batch = batch_size;
  // Bulk evaluation: dispatch whatever has arrived, and admit requests as
  // large as several passes over the dataset.
  server_options.max_delay_ms = 0.0;
  server_options.queue_capacity_rows = std::max<std::int64_t>(
      4096, 4 * static_cast<std::int64_t>(data.size()));
  return serving::Server(Engine::compile(model, options), server_options);
}

float evaluate_accuracy(Module& model, const Dataset& test, int batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  std::int64_t correct = 0;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(test.size()), batch_size)) {
    const Tensor x = gather_images(test.images, idx);
    const std::vector<int> y = gather_labels(test.labels, idx);
    const Tensor logits = model.forward(x);
    const auto pred = argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == y[i]) ++correct;
    }
  }
  model.set_training(was_training);
  return static_cast<float>(correct) / static_cast<float>(test.size());
}

Tensor predict_probabilities(Module& model, const Dataset& data,
                             int batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  Tensor probs;
  std::int64_t row = 0;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(data.size()), batch_size)) {
    const Tensor x = gather_images(data.images, idx);
    const Tensor p = softmax(model.forward(x));
    if (probs.empty()) probs = Tensor({data.size(), p.dim(1)});
    for (std::int64_t i = 0; i < p.dim(0); ++i, ++row) {
      for (std::int64_t j = 0; j < p.dim(1); ++j) {
        probs.at(row, j) = p.at(i, j);
      }
    }
  }
  model.set_training(was_training);
  return probs;
}

float evaluate_adversarial_accuracy(Module& model, const Dataset& test,
                                    const AttackConfig& attack, Rng& rng,
                                    int batch_size) {
  const bool was_training = model.training();
  model.set_training(false);
  std::int64_t correct = 0;
  for (const auto& idx :
       make_eval_batches(static_cast<int>(test.size()), batch_size)) {
    const Tensor x = gather_images(test.images, idx);
    const std::vector<int> y = gather_labels(test.labels, idx);
    const Tensor adv = pgd_attack(model, x, y, attack, rng);
    const Tensor logits = model.forward(adv);
    const auto pred = argmax_rows(logits);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (pred[i] == y[i]) ++correct;
    }
  }
  model.set_training(was_training);
  return static_cast<float>(correct) / static_cast<float>(test.size());
}

}  // namespace rt
