#include "hw/storage.hpp"

#include <cmath>
#include <stdexcept>

namespace rt {

namespace {

constexpr std::int64_t kFp32 = 4;
constexpr std::int64_t kFp16 = 2;

std::int64_t div_round_up(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Rows of a 2-D weight with at least one kept entry.
std::int64_t kept_rows(const Parameter& p) {
  const std::int64_t rows = p.value.dim(0), cols = p.value.dim(1);
  if (!p.has_mask()) return rows;
  std::int64_t kept = 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t c = 0; c < cols; ++c) {
      if (p.mask.at(r, c) != 0.0f) {
        ++kept;
        break;
      }
    }
  }
  return kept;
}

}  // namespace

const char* storage_format_name(StorageFormat format) {
  switch (format) {
    case StorageFormat::kDenseFp32: return "dense-fp32";
    case StorageFormat::kDenseFp16: return "dense-fp16";
    case StorageFormat::kDenseInt8: return "dense-int8";
    case StorageFormat::kBitmaskFp16: return "bitmask-fp16";
    case StorageFormat::kCsrFp16: return "csr-fp16";
    case StorageFormat::kChannelCompactFp16: return "chan-compact-fp16";
  }
  return "unknown";
}

const std::vector<StorageFormat>& all_storage_formats() {
  static const std::vector<StorageFormat> formats{
      StorageFormat::kDenseFp32,      StorageFormat::kDenseFp16,
      StorageFormat::kDenseInt8,      StorageFormat::kBitmaskFp16,
      StorageFormat::kCsrFp16,        StorageFormat::kChannelCompactFp16,
  };
  return formats;
}

std::int64_t nonzero_count(const Parameter& p) {
  if (!p.has_mask()) return p.value.numel();
  std::int64_t nnz = 0;
  for (std::int64_t i = 0; i < p.mask.numel(); ++i) {
    nnz += p.mask[i] != 0.0f ? 1 : 0;
  }
  return nnz;
}

std::int64_t parameter_bytes(const Parameter& p, StorageFormat format) {
  if (p.value.ndim() != 2) {
    throw std::invalid_argument("parameter_bytes: 2-D weights expected");
  }
  const std::int64_t numel = p.value.numel();
  const std::int64_t rows = p.value.dim(0), cols = p.value.dim(1);
  const std::int64_t nnz = nonzero_count(p);
  switch (format) {
    case StorageFormat::kDenseFp32:
      return numel * kFp32;
    case StorageFormat::kDenseFp16:
      return numel * kFp16;
    case StorageFormat::kDenseInt8:
      // Per-output-channel symmetric scales (fp32 each).
      return numel + rows * kFp32;
    case StorageFormat::kBitmaskFp16:
      return div_round_up(numel, 8) + nnz * kFp16;
    case StorageFormat::kCsrFp16:
      // 16-bit column indices are sufficient below 65536 columns.
      return nnz * kFp16 + nnz * 2 + (rows + 1) * kFp32;
    case StorageFormat::kChannelCompactFp16:
      return kept_rows(p) * cols * kFp16 + div_round_up(rows, 8);
  }
  return 0;
}

std::int64_t nm_parameter_bytes(const Parameter& p, int m) {
  if (m < 2) throw std::invalid_argument("nm_parameter_bytes: m >= 2");
  const std::int64_t nnz = nonzero_count(p);
  const auto index_bits = static_cast<std::int64_t>(
      std::ceil(std::log2(static_cast<double>(m))));
  return nnz * kFp16 + div_round_up(nnz * index_bits, 8);
}

std::int64_t model_bytes(ResNet& model, StorageFormat format) {
  std::int64_t total = 0;
  const auto prunable = model.prunable_parameters(/*include_head=*/false);
  for (Parameter* p : model.parameters()) {
    bool is_prunable = false;
    for (const Parameter* q : prunable) {
      if (q == p) {
        is_prunable = true;
        break;
      }
    }
    if (is_prunable) {
      total += parameter_bytes(*p, format);
    } else {
      total += p->value.numel() * kFp16;  // small tensors stay dense fp16
    }
  }
  return total;
}

StorageFormat best_format(const Parameter& p) {
  StorageFormat best = StorageFormat::kDenseFp32;
  std::int64_t best_bytes = parameter_bytes(p, best);
  for (StorageFormat f : all_storage_formats()) {
    const std::int64_t bytes = parameter_bytes(p, f);
    if (bytes < best_bytes) {
      best = f;
      best_bytes = bytes;
    }
  }
  return best;
}

}  // namespace rt
