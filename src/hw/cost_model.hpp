#pragma once
// Roofline-style latency / energy estimates for sparse tickets on edge
// hardware.
//
// Fig. 3's motivation — "structured robust tickets benefit real-hardware
// acceleration" — is quantified here: how much of a mask's nominal FLOP
// reduction a given device can actually realize depends on the sparsity
// GRANULARITY. A plain MCU only wins from channel pruning (smaller dense
// kernels after shrink); an N:M-capable NPU also realizes 2:4 patterns;
// a CSR-friendly CPU kernel realizes unstructured sparsity but pays an
// indexing overhead. Latency follows the roofline max(compute, memory);
// energy is priced per MAC and per byte moved.

#include <string>

#include "hw/storage.hpp"
#include "models/resnet.hpp"
#include "prune/mask.hpp"

namespace rt {

/// Fraction of the nominal (FLOP-count) sparsity speedup the device realizes
/// at each mask granularity, in [0, 1]. 0 = executes dense regardless.
struct SparseEfficiency {
  double element = 0.0;
  double row = 0.0;
  double kernel = 0.0;
  double channel = 1.0;  ///< channel masks shrink to smaller dense kernels
  double nm = 0.0;       ///< hardware N:M (e.g. 2:4) support

  double at(Granularity g) const;
};

struct HardwareProfile {
  std::string name;
  double macs_per_second = 1e9;
  double bytes_per_second = 1e9;
  double joules_per_mac = 1e-12;
  double joules_per_byte = 1e-11;
  SparseEfficiency efficiency;
  StorageFormat weight_format = StorageFormat::kDenseFp16;
  /// Measured int8:fp32 MAC-throughput ratio of the device's NATIVE
  /// quantized kernels (1.0 = no int8 execution units, quantization only
  /// saves bytes). estimate_quantized_cost divides compute time by this.
  double int8_compute_speedup = 1.0;
};

/// A microcontroller-class core: no sparse execution support at all; only
/// channel shrink (and quantization) helps latency.
HardwareProfile edge_mcu_profile();

/// A mobile NPU with 2:4 structured-sparsity execution units.
HardwareProfile mobile_npu_profile();

/// A CPU with a tuned CSR sparse kernel: unstructured sparsity is usable but
/// pays indexing overhead; structured masks approach the nominal speedup.
HardwareProfile sparse_cpu_profile();

struct CostEstimate {
  std::int64_t dense_macs = 0;      ///< per sample
  std::int64_t effective_macs = 0;  ///< after realizable sparsity
  std::int64_t weight_bytes = 0;
  double latency_seconds = 0.0;     ///< roofline max(compute, memory)
  double energy_joules = 0.0;
  double realized_speedup = 1.0;    ///< dense latency / sparse latency
};

/// Estimates per-sample inference cost of the model (with whatever masks are
/// installed) at the given input resolution. `granularity` tells the model
/// which execution pattern the masks follow (the profile's efficiency for
/// that granularity gates the realizable FLOP reduction); pass
/// Granularity::kElement for unstructured tickets.
CostEstimate estimate_cost(ResNet& model, std::int64_t height,
                           std::int64_t width, const HardwareProfile& hw,
                           Granularity granularity);

/// As above but prices an N:M mask via the profile's `nm` efficiency.
CostEstimate estimate_nm_cost(ResNet& model, std::int64_t height,
                              std::int64_t width, const HardwareProfile& hw,
                              int m);

/// As estimate_cost but prices NATIVE int8 execution (the engine's
/// int8_native path, not simulated fake-quant): compute time is divided by
/// the profile's measured int8_compute_speedup, and weights ship quantized —
/// dense formats as int8, sparse sidecars saving one byte per kept value
/// (fp16 value -> s8 value, index metadata unchanged). realized_speedup is
/// still measured against the dense fp32/fp16 baseline, so it now includes
/// the int8 execution gain on top of the realizable sparsity gain.
CostEstimate estimate_quantized_cost(ResNet& model, std::int64_t height,
                                     std::int64_t width,
                                     const HardwareProfile& hw,
                                     Granularity granularity);

}  // namespace rt
