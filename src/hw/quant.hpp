#pragma once
// Post-training int8 weight quantization (reference fake-quant).
//
// The final stage of the edge-deployment story (and the bridge to the
// paper's Double-Win Quant citation [7]): tickets are stored as int8 on
// flash. This module is the fake-quant REFERENCE (quantize -> dequantize,
// float compute), the standard way to isolate PTQ weight error; the engine
// executes the same per-channel symmetric scheme natively on int8 kernels
// (linalg/gemm_s8, CompileOptions::int8_native) and is accuracy-guarded
// against this reference in tests/test_quant_kernels.cpp. Storage savings
// are priced by src/hw/storage, execution savings by hw/cost_model's
// estimate_quantized_cost. Masked weights stay exactly zero through
// quantization (0 maps to the zero-point of a symmetric scheme), so ticket
// sparsity survives deployment.

#include <vector>

#include "models/resnet.hpp"

namespace rt {

enum class QuantScheme {
  kPerTensor,   ///< one symmetric scale per weight tensor
  kPerChannel,  ///< one symmetric scale per output row (channel)
};

const char* quant_scheme_name(QuantScheme scheme);

struct QuantConfig {
  QuantScheme scheme = QuantScheme::kPerChannel;
  int bits = 8;  ///< in [2, 8]
  /// Quantize the classifier head too (default: yes; it ships with the
  /// deployed model even though pruning skips it).
  bool include_head = true;
};

struct QuantReport {
  std::int64_t tensors_quantized = 0;
  double max_abs_error = 0.0;   ///< over all quantized weights
  double mean_abs_error = 0.0;
  std::int64_t int_storage_bytes = 0;  ///< values + fp32 scales
};

/// Fake-quantizes a raw row-major (rows, cols) weight matrix in place and
/// returns the per-row (kPerChannel) or single-element (kPerTensor) scale
/// vector. Symmetric: q = clamp(round(w / s), -Q, Q), w' = q * s with
/// Q = 2^(bits-1) - 1. All-zero rows get scale 0 and stay zero. Shared by
/// the Parameter-level PTQ below and the engine's compile-time weight
/// packing.
std::vector<float> fake_quantize_matrix(float* data, std::int64_t rows,
                                        std::int64_t cols, QuantScheme scheme,
                                        int bits);

/// Fake-quantizes one weight tensor in place; returns the scale vector (see
/// fake_quantize_matrix). Masked weights stay exactly zero.
std::vector<float> fake_quantize(Parameter& p, QuantScheme scheme, int bits);

/// Quantizes all conv/linear weights of the model in place and reports the
/// introduced error and the deployed size.
QuantReport quantize_model(ResNet& model, const QuantConfig& config);

}  // namespace rt
