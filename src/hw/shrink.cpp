#include "hw/shrink.hpp"

#include "models/blocks.hpp"

namespace rt {

namespace {

/// True if output channel `row` of the conv carries no weight (all entries
/// zero after masking — the mask invariant keeps masked values at zero).
bool conv_row_dead(Conv2d& conv, std::int64_t row) {
  const std::int64_t cols = conv.weight().value.dim(1);
  for (std::int64_t c = 0; c < cols; ++c) {
    if (conv.weight().value.at(row, c) != 0.0f) return false;
  }
  return true;
}

bool bn_channel_neutral(BatchNorm2d& bn, std::int64_t ch) {
  return bn.gamma().value[ch] == 0.0f && bn.beta().value[ch] == 0.0f;
}

/// Zeroes gamma/beta (and the gradient-irrelevant running stats) of channels
/// whose producing conv row is dead. Returns channels changed.
std::int64_t neutralize_interface(Conv2d& conv, BatchNorm2d& bn) {
  std::int64_t changed = 0;
  for (std::int64_t ch = 0; ch < conv.out_channels(); ++ch) {
    if (!conv_row_dead(conv, ch)) continue;
    if (!bn_channel_neutral(bn, ch)) {
      bn.gamma().value[ch] = 0.0f;
      bn.beta().value[ch] = 0.0f;
      ++changed;
    }
  }
  return changed;
}

/// keep[ch] = 0 iff the channel is fully dead (removable exactly). Ensures
/// at least one channel survives.
std::vector<char> removable_channels(Conv2d& conv, BatchNorm2d& bn) {
  std::vector<char> keep(static_cast<std::size_t>(conv.out_channels()), 1);
  std::int64_t kept = conv.out_channels();
  for (std::int64_t ch = 0; ch < conv.out_channels(); ++ch) {
    if (kept > 1 && conv_row_dead(conv, ch) && bn_channel_neutral(bn, ch)) {
      keep[static_cast<std::size_t>(ch)] = 0;
      --kept;
    }
  }
  return keep;
}

std::int64_t removed_count(const std::vector<char>& keep) {
  std::int64_t removed = 0;
  for (char k : keep) removed += k == 0 ? 1 : 0;
  return removed;
}

}  // namespace

std::int64_t neutralize_dead_internal_channels(ResNet& model) {
  std::int64_t changed = 0;
  for (std::size_t i = 0; i < model.trunk_size(); ++i) {
    Module* m = &model.trunk_module(i);
    if (auto* basic = dynamic_cast<BasicBlock*>(m)) {
      changed += neutralize_interface(basic->conv1(), basic->bn1());
    } else if (auto* bottleneck = dynamic_cast<BottleneckBlock*>(m)) {
      changed += neutralize_interface(bottleneck->conv1(), bottleneck->bn1());
      changed += neutralize_interface(bottleneck->conv2(), bottleneck->bn2());
    }
  }
  return changed;
}

ShrinkReport shrink_internal_channels(ResNet& model, Rng& rng) {
  ShrinkReport report;
  report.params_before = model.num_parameters();
  for (std::size_t i = 0; i < model.trunk_size(); ++i) {
    Module* m = &model.trunk_module(i);
    if (auto* basic = dynamic_cast<BasicBlock*>(m)) {
      const auto keep = removable_channels(basic->conv1(), basic->bn1());
      const std::int64_t removed = removed_count(keep);
      if (removed > 0) {
        basic->shrink_internal(keep, rng);
        report.channels_removed += removed;
        ++report.blocks_touched;
      }
    } else if (auto* bottleneck = dynamic_cast<BottleneckBlock*>(m)) {
      const auto keep1 =
          removable_channels(bottleneck->conv1(), bottleneck->bn1());
      const auto keep2 =
          removable_channels(bottleneck->conv2(), bottleneck->bn2());
      const std::int64_t removed =
          removed_count(keep1) + removed_count(keep2);
      if (removed > 0) {
        bottleneck->shrink_internal(keep1, keep2, rng);
        report.channels_removed += removed;
        ++report.blocks_touched;
      }
    }
  }
  report.params_after = model.num_parameters();
  return report;
}

ShrinkReport compile_for_deployment(ResNet& model, Rng& rng) {
  const std::int64_t neutralized = neutralize_dead_internal_channels(model);
  ShrinkReport report = shrink_internal_channels(model, rng);
  report.channels_neutralized = neutralized;
  return report;
}

}  // namespace rt
