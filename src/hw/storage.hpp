#pragma once
// On-device storage cost of sparse tickets.
//
// The paper's motivation is deploying pretrained feature extractors on edge
// devices; a ticket's value there is measured in bytes and cycles, not just
// sparsity. This module prices a masked parameter under the standard
// deployment encodings so the benches can report "what does this ticket cost
// on flash" next to its accuracy:
//   dense fp32/fp16/int8 — no sparsity exploited;
//   bitmask              — 1 bit/position + packed nonzero values;
//   CSR                  — values + 16-bit column indices + row pointers;
//   channel-compact      — kept rows stored densely + row bitmap (the right
//                          encoding for channel-structured masks);
//   N:M                  — values + ceil(log2(M))-bit in-group indices.

#include <string>
#include <vector>

#include "models/resnet.hpp"

namespace rt {

enum class StorageFormat {
  kDenseFp32,
  kDenseFp16,
  kDenseInt8,
  kBitmaskFp16,
  kCsrFp16,
  kChannelCompactFp16,
};

const char* storage_format_name(StorageFormat format);

/// All formats, iteration order of the deployment tables.
const std::vector<StorageFormat>& all_storage_formats();

/// Number of mask-nonzero entries (numel when dense).
std::int64_t nonzero_count(const Parameter& p);

/// Bytes needed to store one (possibly masked) parameter in the format.
/// Quantized formats include their scale metadata.
std::int64_t parameter_bytes(const Parameter& p, StorageFormat format);

/// Bytes for an N:M-masked parameter: fp16 values + per-kept-value in-group
/// index of ceil(log2(m)) bits.
std::int64_t nm_parameter_bytes(const Parameter& p, int m);

/// Total bytes of a model's prunable parameters in the format, plus all
/// non-prunable parameters (BN affine, biases, head) stored dense fp16.
std::int64_t model_bytes(ResNet& model, StorageFormat format);

/// The cheapest format for this parameter and its installed mask.
StorageFormat best_format(const Parameter& p);

}  // namespace rt
