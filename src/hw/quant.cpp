#include "hw/quant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rt {

const char* quant_scheme_name(QuantScheme scheme) {
  switch (scheme) {
    case QuantScheme::kPerTensor: return "per-tensor";
    case QuantScheme::kPerChannel: return "per-channel";
  }
  return "unknown";
}

namespace {

void check_bits(int bits) {
  if (bits < 2 || bits > 8) {
    throw std::invalid_argument("quantization bits must be in [2, 8]");
  }
}

float row_max_abs(const float* row, std::int64_t cols) {
  float m = 0.0f;
  for (std::int64_t c = 0; c < cols; ++c) m = std::max(m, std::fabs(row[c]));
  return m;
}

void quantize_row(float* row, std::int64_t cols, float scale, float qmax) {
  if (scale <= 0.0f) return;  // all-zero row: nothing to do
  for (std::int64_t c = 0; c < cols; ++c) {
    const float q = std::round(row[c] / scale);
    row[c] = std::clamp(q, -qmax, qmax) * scale;
  }
}

}  // namespace

std::vector<float> fake_quantize_matrix(float* data, std::int64_t rows,
                                        std::int64_t cols, QuantScheme scheme,
                                        int bits) {
  check_bits(bits);
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  std::vector<float> scales;
  if (scheme == QuantScheme::kPerTensor) {
    const float m = row_max_abs(data, rows * cols);
    const float scale = m > 0.0f ? m / qmax : 0.0f;
    quantize_row(data, rows * cols, scale, qmax);
    scales.assign(1, scale);
  } else {
    scales.reserve(static_cast<std::size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
      const float m = row_max_abs(data + r * cols, cols);
      const float scale = m > 0.0f ? m / qmax : 0.0f;
      quantize_row(data + r * cols, cols, scale, qmax);
      scales.push_back(scale);
    }
  }
  return scales;
}

std::vector<float> fake_quantize(Parameter& p, QuantScheme scheme, int bits) {
  if (p.value.ndim() != 2) {
    throw std::invalid_argument("fake_quantize: 2-D weights expected");
  }
  std::vector<float> scales = fake_quantize_matrix(
      p.value.data(), p.value.dim(0), p.value.dim(1), scheme, bits);
  // Masked weights were exactly zero and round(0/s) == 0: re-applying the
  // mask is a no-op but keeps the invariant explicit.
  p.apply_mask();
  return scales;
}

QuantReport quantize_model(ResNet& model, const QuantConfig& config) {
  check_bits(config.bits);
  QuantReport report;
  double abs_err_sum = 0.0;
  std::int64_t weights = 0;
  for (Parameter* p : model.prunable_parameters(config.include_head)) {
    const Tensor before = p->value;
    const std::vector<float> scales =
        fake_quantize(*p, config.scheme, config.bits);
    ++report.tensors_quantized;
    for (std::int64_t i = 0; i < before.numel(); ++i) {
      const double err =
          std::fabs(static_cast<double>(before[i]) - p->value[i]);
      report.max_abs_error = std::max(report.max_abs_error, err);
      abs_err_sum += err;
    }
    weights += before.numel();
    // int values (bits packed to bytes, pessimistically one byte for 8-bit,
    // sub-byte packed) + one fp32 scale per row / tensor.
    const std::int64_t value_bytes =
        (before.numel() * config.bits + 7) / 8;
    report.int_storage_bytes +=
        value_bytes + static_cast<std::int64_t>(scales.size()) * 4;
  }
  report.mean_abs_error =
      weights > 0 ? abs_err_sum / static_cast<double>(weights) : 0.0;
  return report;
}

}  // namespace rt
