#pragma once
// Channel-shrink compiler: turn channel-structured sparsity into a
// physically smaller dense model.
//
// Masks make weights zero but the dense kernels still execute at full width;
// real structured-pruning deployments remove pruned channels from the
// tensors. This pass does that for the channels a residual network can drop
// without re-wiring: the INTERNAL channels of each block (conv1 outputs in a
// basic block; conv1 and conv2 outputs in a bottleneck). The residual stream
// (stem, block outputs, projections, head input) keeps its width — pruned
// channels there stay as masked zeros, which costs storage only.
//
// Exactness: an internal channel is removable iff nothing observable flows
// through it — its conv row is all zero AND its BN gamma/beta are zero (a
// zero conv row alone still emits the constant ReLU(beta) through BN).
// neutralize_dead_internal_channels() zeroes those BN params for channels
// with all-zero conv rows first (reported, since it changes the function);
// shrink_internal_channels() then removes them with bit-exact equivalence.

#include <vector>

#include "models/resnet.hpp"

namespace rt {

struct ShrinkReport {
  std::int64_t params_before = 0;
  std::int64_t params_after = 0;
  std::int64_t channels_removed = 0;
  int blocks_touched = 0;
  /// BN channels whose gamma/beta were zeroed by the neutralize pass.
  std::int64_t channels_neutralized = 0;

  double param_reduction() const {
    return params_before > 0
               ? 1.0 - static_cast<double>(params_after) /
                           static_cast<double>(params_before)
               : 0.0;
  }
};

/// Zeroes bn gamma/beta of internal channels whose conv rows are entirely
/// masked/zero, making them removable. Returns the number of channels
/// touched (0 means the model was already shrink-ready).
std::int64_t neutralize_dead_internal_channels(ResNet& model);

/// Removes all dead internal channels in place (conv/bn tensors are rebuilt
/// at reduced width). Call neutralize_dead_internal_channels() first; this
/// function only removes channels that are fully dead (zero row AND neutral
/// BN), so it is always output-preserving. At least one channel per
/// interface is kept.
ShrinkReport shrink_internal_channels(ResNet& model, Rng& rng);

/// Convenience: neutralize + shrink, returning the combined report.
ShrinkReport compile_for_deployment(ResNet& model, Rng& rng);

}  // namespace rt
