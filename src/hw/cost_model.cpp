#include "hw/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace rt {

double SparseEfficiency::at(Granularity g) const {
  switch (g) {
    case Granularity::kElement: return element;
    case Granularity::kRow: return row;
    case Granularity::kKernel: return kernel;
    case Granularity::kChannel: return channel;
  }
  return 0.0;
}

HardwareProfile edge_mcu_profile() {
  HardwareProfile hw;
  hw.name = "edge-mcu";
  hw.macs_per_second = 2e8;    // Cortex-M-class DSP extensions
  hw.bytes_per_second = 4e8;   // on-chip flash/SRAM
  hw.joules_per_mac = 2e-11;
  hw.joules_per_byte = 5e-11;
  hw.efficiency = {0.0, 0.0, 0.0, 1.0, 0.0};
  hw.weight_format = StorageFormat::kDenseInt8;
  hw.int8_compute_speedup = 2.0;  // SMLAD-style dual 16-bit MAC issue
  return hw;
}

HardwareProfile mobile_npu_profile() {
  HardwareProfile hw;
  hw.name = "mobile-npu";
  hw.macs_per_second = 2e11;
  hw.bytes_per_second = 2e10;
  hw.joules_per_mac = 1e-12;
  hw.joules_per_byte = 2e-11;
  // 2:4 units realize 90% of nominal; coarse structure realizes all of it.
  hw.efficiency = {0.0, 0.3, 0.6, 1.0, 0.9};
  hw.weight_format = StorageFormat::kDenseFp16;
  hw.int8_compute_speedup = 2.0;  // int8 MAC array double-pumped vs fp16
  return hw;
}

HardwareProfile sparse_cpu_profile() {
  HardwareProfile hw;
  hw.name = "sparse-cpu";
  hw.macs_per_second = 5e9;
  hw.bytes_per_second = 1e10;
  hw.joules_per_mac = 5e-12;
  hw.joules_per_byte = 3e-11;
  // CSR kernels realize unstructured sparsity with indexing overhead.
  hw.efficiency = {0.55, 0.7, 0.85, 1.0, 0.75};
  hw.weight_format = StorageFormat::kCsrFp16;
  // Calibrated against this repo's engine, not a datasheet: the VNNI
  // int8-native path serves a dense micro-r18 at 2.31x the fp32 items/s
  // single-thread (BM_EngineThroughput; per-layer kernel ratios 1.6-3.7x).
  hw.int8_compute_speedup = 2.3;
  return hw;
}

namespace {

CostEstimate estimate_with_efficiency(ResNet& model, std::int64_t height,
                                      std::int64_t width,
                                      const HardwareProfile& hw,
                                      double efficiency,
                                      std::int64_t weight_bytes,
                                      double compute_speedup = 1.0) {
  if (efficiency < 0.0 || efficiency > 1.0) {
    throw std::invalid_argument("cost model: efficiency must be in [0, 1]");
  }
  if (compute_speedup < 1.0) {
    throw std::invalid_argument("cost model: compute speedup must be >= 1");
  }
  const ModelStats stats = model.stats(height, width);
  CostEstimate out;
  out.dense_macs = stats.dense_flops / 2;
  const std::int64_t sparse_macs = stats.sparse_flops / 2;
  // The device only realizes `efficiency` of the nominal MAC reduction.
  out.effective_macs =
      out.dense_macs -
      static_cast<std::int64_t>(
          efficiency * static_cast<double>(out.dense_macs - sparse_macs));
  out.weight_bytes = weight_bytes;

  const double compute_s = static_cast<double>(out.effective_macs) /
                           (hw.macs_per_second * compute_speedup);
  const double memory_s =
      static_cast<double>(out.weight_bytes) / hw.bytes_per_second;
  out.latency_seconds = std::max(compute_s, memory_s);

  out.energy_joules =
      static_cast<double>(out.effective_macs) * hw.joules_per_mac +
      static_cast<double>(out.weight_bytes) * hw.joules_per_byte;

  const double dense_compute_s =
      static_cast<double>(out.dense_macs) / hw.macs_per_second;
  const double dense_memory_s =
      static_cast<double>(model_bytes(model, StorageFormat::kDenseFp16)) /
      hw.bytes_per_second;
  const double dense_latency = std::max(dense_compute_s, dense_memory_s);
  out.realized_speedup =
      out.latency_seconds > 0.0 ? dense_latency / out.latency_seconds : 1.0;
  return out;
}

/// Bytes of the model with the int8 weight sidecar installed: dense formats
/// collapse to kDenseInt8 exactly; sparse formats keep their index metadata
/// and save one byte per kept prunable value (fp16 value -> s8 value).
std::int64_t quantized_model_bytes(ResNet& model, StorageFormat format) {
  switch (format) {
    case StorageFormat::kDenseFp32:
    case StorageFormat::kDenseFp16:
    case StorageFormat::kDenseInt8:
      return model_bytes(model, StorageFormat::kDenseInt8);
    case StorageFormat::kBitmaskFp16:
    case StorageFormat::kCsrFp16:
    case StorageFormat::kChannelCompactFp16:
      break;
  }
  std::int64_t bytes = model_bytes(model, format);
  for (Parameter* p : model.prunable_parameters(false)) {
    bytes -= nonzero_count(*p);
  }
  return bytes;
}

}  // namespace

CostEstimate estimate_cost(ResNet& model, std::int64_t height,
                           std::int64_t width, const HardwareProfile& hw,
                           Granularity granularity) {
  return estimate_with_efficiency(model, height, width, hw,
                                  hw.efficiency.at(granularity),
                                  model_bytes(model, hw.weight_format));
}

CostEstimate estimate_nm_cost(ResNet& model, std::int64_t height,
                              std::int64_t width, const HardwareProfile& hw,
                              int m) {
  if (m < 2) throw std::invalid_argument("estimate_nm_cost: m >= 2");
  // N:M weights ship in their dedicated packed format.
  std::int64_t bytes = 0;
  const auto prunable = model.prunable_parameters(false);
  for (Parameter* p : model.parameters()) {
    const bool is_prunable =
        std::find(prunable.begin(), prunable.end(), p) != prunable.end();
    bytes += is_prunable ? nm_parameter_bytes(*p, m)
                         : p->value.numel() * 2;
  }
  return estimate_with_efficiency(model, height, width, hw,
                                  hw.efficiency.nm, bytes);
}

CostEstimate estimate_quantized_cost(ResNet& model, std::int64_t height,
                                     std::int64_t width,
                                     const HardwareProfile& hw,
                                     Granularity granularity) {
  return estimate_with_efficiency(
      model, height, width, hw, hw.efficiency.at(granularity),
      quantized_model_bytes(model, hw.weight_format), hw.int8_compute_speedup);
}

}  // namespace rt
