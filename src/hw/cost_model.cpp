#include "hw/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace rt {

double SparseEfficiency::at(Granularity g) const {
  switch (g) {
    case Granularity::kElement: return element;
    case Granularity::kRow: return row;
    case Granularity::kKernel: return kernel;
    case Granularity::kChannel: return channel;
  }
  return 0.0;
}

HardwareProfile edge_mcu_profile() {
  HardwareProfile hw;
  hw.name = "edge-mcu";
  hw.macs_per_second = 2e8;    // Cortex-M-class DSP extensions
  hw.bytes_per_second = 4e8;   // on-chip flash/SRAM
  hw.joules_per_mac = 2e-11;
  hw.joules_per_byte = 5e-11;
  hw.efficiency = {0.0, 0.0, 0.0, 1.0, 0.0};
  hw.weight_format = StorageFormat::kDenseInt8;
  return hw;
}

HardwareProfile mobile_npu_profile() {
  HardwareProfile hw;
  hw.name = "mobile-npu";
  hw.macs_per_second = 2e11;
  hw.bytes_per_second = 2e10;
  hw.joules_per_mac = 1e-12;
  hw.joules_per_byte = 2e-11;
  // 2:4 units realize 90% of nominal; coarse structure realizes all of it.
  hw.efficiency = {0.0, 0.3, 0.6, 1.0, 0.9};
  hw.weight_format = StorageFormat::kDenseFp16;
  return hw;
}

HardwareProfile sparse_cpu_profile() {
  HardwareProfile hw;
  hw.name = "sparse-cpu";
  hw.macs_per_second = 5e9;
  hw.bytes_per_second = 1e10;
  hw.joules_per_mac = 5e-12;
  hw.joules_per_byte = 3e-11;
  // CSR kernels realize unstructured sparsity with indexing overhead.
  hw.efficiency = {0.55, 0.7, 0.85, 1.0, 0.75};
  hw.weight_format = StorageFormat::kCsrFp16;
  return hw;
}

namespace {

CostEstimate estimate_with_efficiency(ResNet& model, std::int64_t height,
                                      std::int64_t width,
                                      const HardwareProfile& hw,
                                      double efficiency,
                                      std::int64_t weight_bytes) {
  if (efficiency < 0.0 || efficiency > 1.0) {
    throw std::invalid_argument("cost model: efficiency must be in [0, 1]");
  }
  const ModelStats stats = model.stats(height, width);
  CostEstimate out;
  out.dense_macs = stats.dense_flops / 2;
  const std::int64_t sparse_macs = stats.sparse_flops / 2;
  // The device only realizes `efficiency` of the nominal MAC reduction.
  out.effective_macs =
      out.dense_macs -
      static_cast<std::int64_t>(
          efficiency * static_cast<double>(out.dense_macs - sparse_macs));
  out.weight_bytes = weight_bytes;

  const double compute_s =
      static_cast<double>(out.effective_macs) / hw.macs_per_second;
  const double memory_s =
      static_cast<double>(out.weight_bytes) / hw.bytes_per_second;
  out.latency_seconds = std::max(compute_s, memory_s);

  out.energy_joules =
      static_cast<double>(out.effective_macs) * hw.joules_per_mac +
      static_cast<double>(out.weight_bytes) * hw.joules_per_byte;

  const double dense_compute_s =
      static_cast<double>(out.dense_macs) / hw.macs_per_second;
  const double dense_memory_s =
      static_cast<double>(model_bytes(model, StorageFormat::kDenseFp16)) /
      hw.bytes_per_second;
  const double dense_latency = std::max(dense_compute_s, dense_memory_s);
  out.realized_speedup =
      out.latency_seconds > 0.0 ? dense_latency / out.latency_seconds : 1.0;
  return out;
}

}  // namespace

CostEstimate estimate_cost(ResNet& model, std::int64_t height,
                           std::int64_t width, const HardwareProfile& hw,
                           Granularity granularity) {
  return estimate_with_efficiency(model, height, width, hw,
                                  hw.efficiency.at(granularity),
                                  model_bytes(model, hw.weight_format));
}

CostEstimate estimate_nm_cost(ResNet& model, std::int64_t height,
                              std::int64_t width, const HardwareProfile& hw,
                              int m) {
  if (m < 2) throw std::invalid_argument("estimate_nm_cost: m >= 2");
  // N:M weights ship in their dedicated packed format.
  std::int64_t bytes = 0;
  const auto prunable = model.prunable_parameters(false);
  for (Parameter* p : model.parameters()) {
    const bool is_prunable =
        std::find(prunable.begin(), prunable.end(), p) != prunable.end();
    bytes += is_prunable ? nm_parameter_bytes(*p, m)
                         : p->value.numel() * 2;
  }
  return estimate_with_efficiency(model, height, width, hw,
                                  hw.efficiency.nm, bytes);
}

}  // namespace rt
