#include "common/rng.hpp"

#include <cmath>

#include "common/numeric.hpp"

namespace rt {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0u), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1).
  return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  return lo + static_cast<int>(
                  next_below(static_cast<std::uint32_t>(hi - lo + 1)));
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  float u1 = 1.0f - uniform();
  const float u2 = uniform();
  const float r = std::sqrt(-2.0f * std::log(u1));
  const float theta = kTwoPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(float p) { return uniform() < p; }

Rng Rng::split() {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  return Rng(seed, stream);
}

std::vector<int> random_permutation(int n, Rng& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.shuffle(perm);
  return perm;
}

}  // namespace rt
