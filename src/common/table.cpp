#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rt {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table needs >=1 column");
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  const double d = std::get<double>(c);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision_, d);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t j = 0; j < columns_.size(); ++j) widths[j] = columns_[j].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      r.push_back(render_cell(row[j]));
      widths[j] = std::max(widths[j], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  std::ostringstream out;
  auto hline = [&] {
    for (std::size_t j = 0; j < widths.size(); ++j) {
      out << '+' << std::string(widths[j] + 2, '-');
    }
    out << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t j = 0; j < cells.size(); ++j) {
      out << "| " << cells[j] << std::string(widths[j] - cells[j].size() + 1, ' ');
    }
    out << "|\n";
  };
  hline();
  print_row(columns_);
  hline();
  for (const auto& r : rendered) print_row(r);
  hline();
  return out.str();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t j = 0; j < columns_.size(); ++j) {
    if (j) out << ',';
    out << csv_escape(columns_[j]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j) out << ',';
      out << csv_escape(render_cell(row[j]));
    }
    out << '\n';
  }
  return out.str();
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace rt
