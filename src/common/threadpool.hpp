#pragma once
// ThreadPool: the library's historical parallel_for entry point, now a thin
// wrapper over the work-stealing scheduler (common/scheduler.hpp).
//
// The original flat pool handed each worker one fixed chunk and ran nested
// parallel_for calls inline-serial. The scheduler decomposes every loop into
// stealable subtasks instead, so nested regions compose: a conv-over-batch
// outer loop and a gemm-over-rows inner loop interleave across the same
// workers. Existing callers keep working unchanged — parallel_for still
// blocks until the whole range completes — but closures are now passed by
// non-allocating FunctionRef rather than std::function, so a call costs no
// heap allocation.

#include <cstdint>
#include <memory>

#include "common/function_ref.hpp"
#include "common/scheduler.hpp"

namespace rt {

/// Fixed-size worker pool. Use ThreadPool::instance() for the process-wide
/// pool (sized by RT_THREADS, else the hardware concurrency); construct
/// explicitly only in tests and benches.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads)
      : owned_(std::make_unique<Scheduler>(num_threads)),
        scheduler_(owned_.get()) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(begin, end) over a deterministic partition of [0, n), blocking
  /// until all subranges complete. `grain` caps the leaf range width
  /// (<= 0 picks a default); nested calls from worker threads decompose
  /// and interleave instead of running inline.
  void parallel_for(std::int64_t n,
                    FunctionRef<void(std::int64_t, std::int64_t)> fn,
                    std::int64_t grain = 0) {
    scheduler_->parallel_for(n, fn, grain);
  }

  int num_threads() const { return scheduler_->num_threads(); }

  /// The underlying scheduler, for TaskGroup construction and scoping.
  Scheduler& scheduler() { return *scheduler_; }

  /// Process-wide pool over Scheduler::instance().
  static ThreadPool& instance();

 private:
  explicit ThreadPool(Scheduler* scheduler) : scheduler_(scheduler) {}

  std::unique_ptr<Scheduler> owned_;
  Scheduler* scheduler_;
};

/// Convenience wrapper over Scheduler::current().parallel_for — the current
/// worker's scheduler inside a pool, an active SchedulerScope's, else the
/// process-wide instance.
void parallel_for(std::int64_t n,
                  FunctionRef<void(std::int64_t, std::int64_t)> fn,
                  std::int64_t grain = 0);

}  // namespace rt
