#pragma once
// Minimal persistent thread pool with a chunked parallel_for.
//
// The training stack parallelizes over the batch dimension in convolution and
// pooling layers. With small tensors the per-task overhead matters, so the
// pool hands each worker one contiguous index range rather than one index.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rt {

/// Fixed-size worker pool. Use ThreadPool::instance() for the process-wide
/// pool; construct explicitly only in tests.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(begin, end) over a partition of [0, n). Blocks until all chunks
  /// complete. Falls back to a direct call when n is small, the pool has a
  /// single thread, or the caller is itself one of this pool's workers
  /// (nested parallelism runs inline rather than deadlocking).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& instance();

 private:
  struct Task {
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  int pending_ = 0;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::instance().parallel_for.
void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace rt
