#pragma once
// Non-owning, non-allocating callable reference — the task representation of
// the scheduler layer.
//
// std::function type-erases by (potentially) heap-allocating a copy of the
// closure; on the parallel_for hot path that is one allocation per call for a
// closure that only needs to live until the call returns. FunctionRef erases
// to two words (object pointer + invoke thunk) and never owns anything: the
// referenced callable must outlive every invocation. All scheduler entry
// points block until their tasks finish, so binding a temporary lambda at the
// call site is safe — the lambda lives in the caller's frame for the whole
// fork/join region.

#include <type_traits>
#include <utility>

namespace rt {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by design —
                      // call sites pass lambdas where a FunctionRef is due.
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  explicit operator bool() const { return call_ != nullptr; }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace rt
