#pragma once
// Work-stealing task scheduler: the substrate under every parallel loop in
// the library (ThreadPool::parallel_for is a thin wrapper over it).
//
// The old flat pool partitioned each parallel_for into one chunk per thread
// and ran nested calls inline-serial, so batch-level and kernel-level
// parallelism could not compose: a conv-over-batch outer loop with fewer
// samples than cores left the remaining cores idle even though the per-plane
// kernels had tile-level work to give them. This scheduler makes fork/join
// regions nest:
//
//   - each worker owns a Chase–Lev deque: it pushes and pops its own tasks
//     LIFO (lock-free, cache-hot depth-first execution) while idle workers
//     steal FIFO from the other end, taking the oldest — i.e. largest —
//     subrange. Threads outside the pool submit through a small mutexed
//     injection queue and help execute while they wait, so any thread can
//     open a fork/join region.
//   - parallel_for decomposes [0, n) by recursive halving into stealable
//     subtasks down to a grain, instead of a fixed one-chunk-per-thread
//     partition. A nested parallel_for pushes subtasks onto the worker's own
//     deque, where other workers steal them: outer and inner loops interleave
//     instead of flattening.
//   - TaskGroup is the irregular-work primitive underneath: spawn() enqueues
//     closures, wait() helps execute until all of them (and their
//     descendants) finish, rethrowing the first exception any task threw.
//   - tasks are two raw words (thunk + context pointer): every scheduler
//     entry point blocks until its tasks finish, so closures live in the
//     spawner's frame and nothing is heap-allocated per task on the worker
//     path (externally injected tasks pass through one mutexed std::deque).
//
// Determinism contract: parallel_for invokes fn over a partition of [0, n)
// fixed by (n, grain, num_threads()) — recursive midpoint halving until a
// range is at most `grain` — regardless of which worker executes which leaf
// or in what order. Callers that keep per-invocation accumulation inside
// fn's own range (every kernel in linalg/ does) therefore get bitwise
// reproducible results under arbitrary stealing; reductions across leaves
// must combine partials in a fixed tree (see Conv2d::backward) rather than
// in completion order.
//
// Sizing: Scheduler::instance() honors RT_THREADS (benches and CI pin it for
// reproducible thread counts) and falls back to the hardware concurrency.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "common/function_ref.hpp"

namespace rt {

class Scheduler;

/// Two scheduling lanes. kBulk is the default: parallel_for leaves and
/// ordinary TaskGroup spawns — throughput work (retraining, eval batteries,
/// kernel row blocks). kServing marks latency-sensitive tasks (the serving
/// front-end's micro-batches): they are queued separately and every
/// acquisition point — worker loop, steal path, helping waiter — drains that
/// queue before touching any bulk work, so a serving task overtakes every
/// queued bulk leaf. Priority is non-preemptive: a bulk task already
/// executing runs to completion; overtaking happens at dequeue points.
enum class TaskPriority { kBulk, kServing };

namespace detail {

struct TaskGroupState;

/// One schedulable unit: a bare thunk plus the context it runs over. For
/// parallel_for subtasks [begin, end) is the remaining index range; spawned
/// closures ignore it. `priority` only routes the task at submit time
/// (serving tasks never enter the work-stealing deques).
struct Task {
  using Invoke = void (*)(void* ctx, std::int64_t begin, std::int64_t end);
  Invoke invoke = nullptr;
  void* ctx = nullptr;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  TaskGroupState* group = nullptr;
  TaskPriority priority = TaskPriority::kBulk;
};

/// Completion state shared by all tasks of one fork/join region. Lives in the
/// waiter's frame (TaskGroup member or parallel_for stack), so it needs no
/// allocation and no reference counting — wait() cannot return before every
/// task holding a pointer to it has finished.
struct TaskGroupState {
  std::atomic<std::int64_t> pending{0};
  std::atomic<bool> failed{false};
  std::exception_ptr exception;  ///< first failure; guarded by mutex
  std::mutex mutex;
  std::condition_variable done_cv;
};

struct Worker;

}  // namespace detail

/// Fixed-size work-stealing scheduler. Construct explicitly for tests and
/// benches; use Scheduler::instance() (or the ThreadPool wrapper) for the
/// process-wide pool.
class Scheduler {
 public:
  explicit Scheduler(int num_threads);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Total execution lanes: spawned workers plus the calling thread, which
  /// always participates in its own fork/join regions.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(begin, end) over a deterministic partition of [0, n): ranges
  /// are halved into stealable subtasks until at most `grain` wide (grain
  /// <= 0 picks a default of ~4 leaves per lane). Blocks until every leaf
  /// completes; rethrows the first exception a leaf threw. Safe to call from
  /// worker threads — nested calls compose instead of running inline-serial.
  void parallel_for(std::int64_t n,
                    FunctionRef<void(std::int64_t, std::int64_t)> fn,
                    std::int64_t grain = 0);

  /// Executes one queued serving-priority task if any, returning whether it
  /// did. Lets a latency-critical producer (the serving coalescer) guarantee
  /// the urgent lane drains without adopting an arbitrarily long bulk task
  /// the way a full wait_group() help could.
  bool help_urgent();

  /// Process-wide scheduler: RT_THREADS lanes when set, else the hardware
  /// concurrency.
  static Scheduler& instance();

  /// The scheduler the calling thread should submit to: the one whose worker
  /// is running this thread, an active SchedulerScope's, else instance().
  static Scheduler& current();

  /// RT_THREADS when set to a positive integer, else hardware concurrency.
  static int default_thread_count();

 private:
  friend class TaskGroup;
  friend class SchedulerScope;
  friend struct detail::Worker;

  /// Adds the task to its group and queues it: worker threads push onto
  /// their own deque (lock-free), external threads onto the injection
  /// queue. A full deque degrades to executing the task inline. Serving-
  /// priority tasks always go to the dedicated urgent queue, which every
  /// acquisition point drains first.
  void submit(const detail::Task& task);
  /// Runs one task, routing any exception into its group.
  void execute(const detail::Task& task);
  /// Helps until the group has no outstanding tasks, then rethrows its
  /// exception if any task failed. Executes unrelated tasks while waiting —
  /// a waiter is a full worker, which is what lets nested regions compose
  /// without idling a lane.
  void wait_group(detail::TaskGroupState& group);
  /// Pops or steals one runnable task. `self` is the calling worker's lane
  /// or -1 for external threads.
  bool try_acquire(int self, detail::Task& out);
  bool steal_from_others(int self, detail::Task& out);
  bool pop_injected(detail::Task& out);
  bool pop_urgent(detail::Task& out);
  void wake_one();
  void worker_main(int index);

  static void for_trampoline(void* ctx, std::int64_t begin, std::int64_t end);

  std::vector<std::unique_ptr<detail::Worker>> workers_;

  std::mutex inject_mutex_;
  std::deque<detail::Task> injected_;

  // Serving lane: a mutexed FIFO checked before any bulk source. The atomic
  // count keeps the empty case lock-free — bulk throughput pays one
  // uncontended seq_cst load per acquisition when no serving traffic exists
  // (seq_cst so a parker's post-registration re-check cannot miss a count
  // bumped before the wakeup signal).
  std::mutex urgent_mutex_;
  std::deque<detail::Task> urgent_;
  std::atomic<std::int64_t> urgent_count_{0};

  // Parked-worker wakeup: push bumps signals_ and pokes the condvar only
  // when someone is parked; parkers re-check the deques after registering,
  // and a bounded wait_for covers the remaining submit/park race window.
  std::atomic<std::uint64_t> signals_{0};
  std::atomic<int> parked_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  std::atomic<bool> stop_{false};
};

/// Fork/join group of spawned closures. spawn() never copies the closure —
/// it must outlive wait(), which is natural because wait() is what ends the
/// region:
///
///   TaskGroup tg;
///   auto shard = [&](...) {...};   // lives past tg.wait()
///   tg.spawn(shard_a); tg.spawn(shard_b);
///   tg.wait();                     // helps execute; rethrows first failure
///
/// Indexed loops should prefer Scheduler::parallel_for, which builds on the
/// same machinery with a deterministic decomposition.
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& scheduler = Scheduler::current(),
                     TaskPriority priority = TaskPriority::kBulk)
      : sched_(scheduler), priority_(priority) {}
  /// Priority-only construction against the calling thread's scheduler.
  explicit TaskGroup(TaskPriority priority)
      : TaskGroup(Scheduler::current(), priority) {}
  /// Waits for stragglers (swallowing their exceptions); call wait() on the
  /// success path so failures propagate.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues fn() as one task. Takes an lvalue on purpose: the callable is
  /// referenced, not copied, so a temporary would dangle.
  template <typename F>
  void spawn(F& fn) {
    submit(&TaskGroup::invoke_adapter<F>, &fn);
  }

  /// Blocks until every spawned task finished, executing queued tasks while
  /// waiting. Rethrows the first exception any task threw. The group is
  /// reusable afterwards.
  void wait();

 private:
  template <typename F>
  static void invoke_adapter(void* ctx, std::int64_t, std::int64_t) {
    (*static_cast<F*>(ctx))();
  }
  void submit(detail::Task::Invoke invoke, void* ctx);

  Scheduler& sched_;
  TaskPriority priority_ = TaskPriority::kBulk;
  detail::TaskGroupState state_;
};

/// Redirects Scheduler::current() — and through it rt::parallel_for and
/// every kernel — to a specific scheduler for the calling thread's scope.
/// Benches use this to measure fixed thread counts without touching the
/// process-wide instance.
class SchedulerScope {
 public:
  explicit SchedulerScope(Scheduler& scheduler);
  ~SchedulerScope();

  SchedulerScope(const SchedulerScope&) = delete;
  SchedulerScope& operator=(const SchedulerScope&) = delete;

 private:
  Scheduler* previous_;
};

}  // namespace rt
