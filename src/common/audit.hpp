#pragma once
// RT_HOT annotation + RT_AUDIT debug hooks: the two halves of the repo's
// machine-checked hot-path contract.
//
// RT_HOT marks a function as steady-state allocation-free: after per-thread
// warm-up (thread_local buffer growth, workspace-pool high-water marks), a
// call performs no heap allocation. The marker expands to nothing — it
// exists for tooling:
//   - statically, tools/rtlint rule R2 bans allocation constructs (new,
//     malloc, vector growth, std::function) inside RT_HOT bodies;
//   - dynamically, RT_AUDIT builds count allocations under audit::AllocGuard
//     and tests assert the steady-state count is zero (tests/test_audit.cpp).
//
// RT_AUDIT (CMake -DRT_AUDIT=ON, wired into `scripts/check.sh --lint`) turns
// on two families of runtime hooks; with it OFF (the default) everything in
// this header compiles to nothing and release builds pay zero cost:
//   - a counting allocator guard: global operator new/delete are replaced
//     with counting wrappers (common/audit.cpp) that tally allocations made
//     while any AllocGuard is live on the calling thread;
//   - lock-order assertions: every mutex acquisition in the scheduler,
//     serving, and registry layers carries an RT_AUDIT_LOCK(rank) marker;
//     acquiring a rank at or below one already held by the thread aborts
//     with both sites' ranks. The only sanctioned nesting is the registry
//     control plane calling into serving's route table (catalog -> route);
//     every other lock is leaf-level, so any new nesting must raise the
//     outer lock's rank explicitly — a forcing function for documenting
//     lock hierarchies before they grow.

#include <cstdint>

/// Marks a function whose steady state must be allocation-free. Tooling
/// marker only — expands to nothing (rtlint R2 + RT_AUDIT tests enforce it).
#define RT_HOT

namespace rt {
namespace audit {

/// Lock ranks, outermost-lowest. A thread may only acquire strictly
/// increasing ranks. The one legitimate nesting today: the registry holds
/// its catalog mutex while swapping a Server's route table (catalog ->
/// route), which is why the registry ranks sit below every serving rank.
/// All other ranks are leaf-level; adding new nesting means giving the
/// outer mutex a lower rank here and documenting why.
enum class LockRank : int {
  // The net front-end's locks rank lowest: a connection reader dispatches
  // into the registry (catalog) and serving (route/queue) layers, so even
  // though dispatch never actually holds a net lock across those calls, the
  // ranks document the accept/connection < registry < serving route order
  // and would catch a future regression that nests them.
  kNetAccept = 0,       ///< net::InferenceServer connections_mutex_
  kNetConnection = 1,   ///< net connection response-queue mutex (leaf)
  kRegistryCatalog = 2, ///< registry::Registry catalog_mutex_
  kRegistryCompile = 4, ///< registry::Registry compile_mutex_
  kServingRoute = 6,    ///< serving::Server route_mutex_
  kServingCache = 8,    ///< serving::PredictionCache shard mutexes (leaf)
  kServingQueue = 10,   ///< serving::Server queue_mutex_
  kServingError = 20,   ///< serving::detail::Request error_mutex
  kSchedInject = 30,    ///< Scheduler inject_mutex_
  kSchedUrgent = 40,    ///< Scheduler urgent_mutex_
  kSchedPark = 50,      ///< Scheduler park_mutex_
  kSchedGroup = 60,     ///< TaskGroupState mutex
};

#if RT_AUDIT

/// True in RT_AUDIT builds; tests skip their assertions otherwise.
constexpr bool enabled() { return true; }

/// Counts heap allocations (operator new / new[]) made by the calling thread
/// while alive. Guards nest; each sees allocations made since its own
/// construction. Used by tests to assert RT_HOT steady states allocate zero.
class AllocGuard {
 public:
  explicit AllocGuard(const char* region);
  ~AllocGuard();

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocations on this thread since construction.
  std::int64_t allocations() const;
  const char* region() const { return region_; }

 private:
  const char* region_;
  std::int64_t start_;
};

/// Asserts the thread's lock acquisition order: constructing a guard with a
/// rank at or below the innermost live rank aborts. Place one immediately
/// after the lock_guard/unique_lock it audits (see RT_AUDIT_LOCK).
class LockOrderGuard {
 public:
  explicit LockOrderGuard(LockRank rank);
  ~LockOrderGuard();

  LockOrderGuard(const LockOrderGuard&) = delete;
  LockOrderGuard& operator=(const LockOrderGuard&) = delete;

 private:
  LockRank rank_;
};

#define RT_AUDIT_CONCAT2(a, b) a##b
#define RT_AUDIT_CONCAT(a, b) RT_AUDIT_CONCAT2(a, b)
/// Audits the enclosing critical section's rank; a no-op unless RT_AUDIT.
#define RT_AUDIT_LOCK(rank)                        \
  ::rt::audit::LockOrderGuard RT_AUDIT_CONCAT(     \
      rt_audit_lock_rank_, __LINE__)(rank)

#else  // !RT_AUDIT — every hook compiles away

constexpr bool enabled() { return false; }

class AllocGuard {
 public:
  explicit AllocGuard(const char* region) : region_(region) {}
  std::int64_t allocations() const { return 0; }
  const char* region() const { return region_; }

 private:
  const char* region_;
};

class LockOrderGuard {
 public:
  explicit LockOrderGuard(LockRank) {}
};

#define RT_AUDIT_LOCK(rank) \
  do {                      \
  } while (false)

#endif  // RT_AUDIT

}  // namespace audit
}  // namespace rt
