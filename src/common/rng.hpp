#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng (a PCG32 generator with a
// hand-rolled Box-Muller normal transform) so that results are bit-identical
// across platforms and standard-library implementations. std::random
// distributions are implementation-defined and deliberately avoided.

#include <cstdint>
#include <vector>

namespace rt {

/// PCG32 pseudo-random generator (O'Neill 2014). 64-bit state, 32-bit output.
class Rng {
 public:
  /// Seeds the generator. Two generators with the same (seed, stream) produce
  /// identical sequences; distinct streams are statistically independent.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Next raw 32-bit value.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform float in [0, 1).
  float uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal sample via Box-Muller (deterministic, cached pair).
  float normal();

  /// Normal sample with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(float p);

  /// Derives an independent child generator; useful for giving each dataset /
  /// model / attack its own stream from one experiment seed.
  Rng split();

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::uint32_t j = next_below(static_cast<std::uint32_t>(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

/// Returns a permutation of [0, n).
std::vector<int> random_permutation(int n, Rng& rng);

}  // namespace rt
