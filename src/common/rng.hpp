#pragma once
// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng (a PCG32 generator with a
// hand-rolled Box-Muller normal transform) so that results are bit-identical
// across platforms and standard-library implementations. std::random
// distributions are implementation-defined and deliberately avoided.

#include <cstdint>
#include <vector>

namespace rt {

/// PCG32 pseudo-random generator (O'Neill 2014). 64-bit state, 32-bit output.
class Rng {
 public:
  /// Seeds the generator. Two generators with the same (seed, stream) produce
  /// identical sequences; distinct streams are statistically independent.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
               std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Next raw 32-bit value.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound) without modulo bias. bound must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform float in [0, 1).
  float uniform();

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal sample via Box-Muller (deterministic, cached pair).
  float normal();

  /// Normal sample with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(float p);

  /// Derives an independent child generator; useful for giving each dataset /
  /// model / attack its own stream from one experiment seed.
  Rng split();

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::uint32_t j = next_below(static_cast<std::uint32_t>(i + 1));
      std::swap(v[i], v[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

/// Returns a permutation of [0, n).
std::vector<int> random_permutation(int n, Rng& rng);

/// Fully constexpr PCG32 (XSH-RR output over the 6364136223846793005 LCG),
/// for deterministic *data generation* — synthetic traffic traces, fuzz
/// inputs, compile-time tables — where the sequence must be pinned by value
/// in a test and reproduced bit-identically on every host and toolchain.
///
/// Rng above is the runtime generator (normal transform, shuffle, split);
/// Pcg32 is the minimal integer core with every member constexpr, so traces
/// can be built in constant expressions:
///
///   constexpr std::uint32_t third = [] {
///     Pcg32 g(42, 7);
///     g.next_u32(); g.next_u32();
///     return g.next_u32();
///   }();
///
/// Seeding follows the canonical pcg32_srandom: state = 0, advance once,
/// add the seed, advance again — so (seed, stream) pairs here match the
/// reference PCG implementation, not Rng's historical seeding.
class Pcg32 {
 public:
  constexpr explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0)
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  constexpr std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform integer in [0, bound) without modulo bias (rejection sampling;
  /// bound must be > 0).
  constexpr std::uint32_t next_below(std::uint32_t bound) {
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1) with 32 bits of entropy — enough resolution
  /// for trace-distribution inversion while staying exactly reproducible.
  constexpr double uniform_double() {
    return static_cast<double>(next_u32()) * 0x1p-32;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace rt
