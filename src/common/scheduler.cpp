#include "common/scheduler.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/audit.hpp"

namespace rt {

namespace detail {

namespace {

/// Upper bound on a helper thread's sleep when it finds nothing runnable but
/// its group is still pending: the bounded backstop for the benign race
/// between a submitter's wakeup check and a waiter registering. Completion
/// and fresh work both notify, so this latency is only paid when a
/// notification slipped through the window.
constexpr auto kWaitSlice = std::chrono::microseconds(200);

}  // namespace

/// Chase–Lev work-stealing deque over a fixed ring. The owner pushes and
/// pops at the bottom (LIFO — depth-first, cache-hot); thieves CAS the top
/// (FIFO — they take the oldest, i.e. largest, remaining subrange). Slots
/// are stored field-wise through atomics so a thief racing a wrap-around
/// push reads consistent *memory* (its stale value is discarded when the
/// top CAS fails) without a data race. A full deque makes push() fail and
/// the submitter run the task inline — depth-first execution, the same
/// order a serial run would use.
class WorkDeque {
 public:
  static constexpr std::int64_t kCapacity = 4096;  // power of two

  RT_HOT bool push(const Task& t) {  // owner only
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t top = top_.load(std::memory_order_acquire);
    if (b - top >= kCapacity) return false;
    store_slot(slots_[static_cast<std::size_t>(b & kMask)], t);
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  RT_HOT bool pop(Task& out) {  // owner only
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t top = top_.load(std::memory_order_seq_cst);
    if (top > b) {  // empty: restore
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = load_slot(slots_[static_cast<std::size_t>(b & kMask)]);
    if (top == b) {
      // Last element: race the thieves for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          top, top + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  RT_HOT bool steal(Task& out) {  // any thread
    std::int64_t top = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (top >= b) return false;
    out = load_slot(slots_[static_cast<std::size_t>(top & kMask)]);
    return top_.compare_exchange_strong(top, top + 1,
                                        std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  bool maybe_nonempty() const {
    return top_.load(std::memory_order_relaxed) <
           bottom_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::int64_t kMask = kCapacity - 1;

  struct Slot {
    std::atomic<Task::Invoke> invoke{nullptr};
    std::atomic<void*> ctx{nullptr};
    std::atomic<std::int64_t> begin{0};
    std::atomic<std::int64_t> end{0};
    std::atomic<TaskGroupState*> group{nullptr};
  };

  static void store_slot(Slot& s, const Task& t) {
    s.invoke.store(t.invoke, std::memory_order_relaxed);
    s.ctx.store(t.ctx, std::memory_order_relaxed);
    s.begin.store(t.begin, std::memory_order_relaxed);
    s.end.store(t.end, std::memory_order_relaxed);
    s.group.store(t.group, std::memory_order_relaxed);
  }

  static Task load_slot(const Slot& s) {
    Task t;
    t.invoke = s.invoke.load(std::memory_order_relaxed);
    t.ctx = s.ctx.load(std::memory_order_relaxed);
    t.begin = s.begin.load(std::memory_order_relaxed);
    t.end = s.end.load(std::memory_order_relaxed);
    t.group = s.group.load(std::memory_order_relaxed);
    return t;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::array<Slot, kCapacity> slots_;
};

struct Worker {
  WorkDeque deque;
  std::thread thread;
};

namespace {

/// The scheduler whose worker loop owns this thread (nullptr on external
/// threads), and its lane index.
thread_local Scheduler* tl_worker_scheduler = nullptr;
thread_local int tl_worker_index = -1;
/// SchedulerScope override for external threads.
thread_local Scheduler* tl_scope_scheduler = nullptr;
/// Rotating steal start so external helpers don't all hammer lane 0.
thread_local unsigned tl_steal_seed = 0;

void record_failure(TaskGroupState& group) {
  std::lock_guard<std::mutex> lock(group.mutex);
  RT_AUDIT_LOCK(audit::LockRank::kSchedGroup);
  if (!group.failed.load(std::memory_order_relaxed)) {
    group.exception = std::current_exception();
    group.failed.store(true, std::memory_order_release);
  }
}

void finish_task(TaskGroupState& group) {
  // The decrement and the completion notify share one critical section, and
  // the waiter confirms its exit under the same mutex: once the waiter holds
  // the lock and reads pending == 0, every finisher's last touch of the
  // group has already happened, so the waiter can safely destroy the state
  // (it lives on the waiting frame's stack). A decrement outside the lock
  // would let the waiter free the group between our decrement and notify.
  std::lock_guard<std::mutex> lock(group.mutex);
  RT_AUDIT_LOCK(audit::LockRank::kSchedGroup);
  if (group.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    group.done_cv.notify_all();
  }
}

}  // namespace
}  // namespace detail

// ---- Scheduler --------------------------------------------------------------

Scheduler::Scheduler(int num_threads) {
  const int extra = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.push_back(std::make_unique<detail::Worker>());
  }
  // Deques exist before any thread starts, so a fast first submitter can
  // never race worker construction.
  for (int i = 0; i < extra; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_main(i); });
  }
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_seq_cst);
  signals_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kSchedPark);
  }
  park_cv_.notify_all();
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

int Scheduler::default_thread_count() {
  if (const char* env = std::getenv("RT_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

Scheduler& Scheduler::instance() {
  static Scheduler scheduler(default_thread_count());
  return scheduler;
}

Scheduler& Scheduler::current() {
  if (detail::tl_worker_scheduler != nullptr) {
    return *detail::tl_worker_scheduler;
  }
  if (detail::tl_scope_scheduler != nullptr) return *detail::tl_scope_scheduler;
  return instance();
}

void Scheduler::submit(const detail::Task& task) {
  task.group->pending.fetch_add(1, std::memory_order_relaxed);
  if (task.priority == TaskPriority::kServing) {
    // Serving lane: never enters a work-stealing deque, so it cannot sit
    // behind a worker's depth-first bulk backlog. The count bump must be
    // visible before the wakeup so a parker's re-check finds the task.
    {
      std::lock_guard<std::mutex> lock(urgent_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kSchedUrgent);
      urgent_.push_back(task);
    }
    urgent_count_.fetch_add(1, std::memory_order_seq_cst);
    wake_one();
    return;
  }
  bool queued;
  if (detail::tl_worker_scheduler == this) {
    queued = workers_[static_cast<std::size_t>(detail::tl_worker_index)]
                 ->deque.push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    RT_AUDIT_LOCK(audit::LockRank::kSchedInject);
    injected_.push_back(task);
    queued = true;
  }
  if (!queued) {
    // Deque full: run depth-first right here rather than blocking.
    execute(task);
    return;
  }
  wake_one();
}

void Scheduler::wake_one() {
  signals_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) > 0) {
    // Close the park race before notifying: a parker that evaluated its
    // wait predicate before our signals_ bump still holds park_mutex_ until
    // it actually blocks on the condvar, so acquiring the mutex here orders
    // us after that block — the notify cannot slip into the gap and be
    // lost. Uncontended this is one lock/unlock, and only when someone is
    // parked (the no-parked fast path stays lock-free).
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kSchedPark);
    }
    park_cv_.notify_one();
  }
}

void Scheduler::execute(const detail::Task& task) {
  detail::TaskGroupState* group = task.group;
  // A failed group cancels its remaining tasks: they complete without
  // running so wait() can rethrow promptly.
  if (!group->failed.load(std::memory_order_acquire)) {
    try {
      task.invoke(task.ctx, task.begin, task.end);
    } catch (...) {
      detail::record_failure(*group);
    }
  }
  detail::finish_task(*group);
}

RT_HOT bool Scheduler::pop_urgent(detail::Task& out) {
  // Lock-free fast path: bulk-only workloads pay one atomic load here.
  if (urgent_count_.load(std::memory_order_seq_cst) == 0) return false;
  std::lock_guard<std::mutex> lock(urgent_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kSchedUrgent);
  if (urgent_.empty()) return false;
  out = urgent_.front();
  urgent_.pop_front();
  urgent_count_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Scheduler::help_urgent() {
  detail::Task task;
  if (!pop_urgent(task)) return false;
  if (detail::tl_worker_scheduler == this) {
    execute(task);
  } else {
    // Nested fork/join regions inside the task must land on this scheduler.
    SchedulerScope scope(*this);
    execute(task);
  }
  return true;
}

bool Scheduler::pop_injected(detail::Task& out) {
  std::lock_guard<std::mutex> lock(inject_mutex_);
  RT_AUDIT_LOCK(audit::LockRank::kSchedInject);
  if (injected_.empty()) return false;
  out = injected_.front();
  injected_.pop_front();
  return true;
}

RT_HOT bool Scheduler::steal_from_others(int self, detail::Task& out) {
  const int lanes = static_cast<int>(workers_.size());
  if (lanes == 0) return false;
  const int start = self >= 0
                        ? self + 1
                        : static_cast<int>(detail::tl_steal_seed++) % lanes;
  for (int i = 0; i < lanes; ++i) {
    const int victim = (start + i) % lanes;
    if (victim == self) continue;
    if (workers_[static_cast<std::size_t>(victim)]->deque.steal(out)) {
      return true;
    }
  }
  return false;
}

RT_HOT bool Scheduler::try_acquire(int self, detail::Task& out) {
  // Serving tasks overtake every bulk source — including the caller's own
  // deque, whose entries are merely queued (not in-progress) bulk leaves.
  if (pop_urgent(out)) return true;
  if (self >= 0 &&
      workers_[static_cast<std::size_t>(self)]->deque.pop(out)) {
    return true;
  }
  if (steal_from_others(self, out)) return true;
  return pop_injected(out);
}

void Scheduler::worker_main(int index) {
  detail::tl_worker_scheduler = this;
  detail::tl_worker_index = index;
  detail::Task task;
  for (;;) {
    if (try_acquire(index, task)) {
      execute(task);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Park. Snapshot the signal counter, re-check the queues (a submit
    // between the failed acquire and here bumped the counter, so the wait
    // predicate falls through), then sleep until poked.
    const std::uint64_t sig = signals_.load(std::memory_order_seq_cst);
    parked_.fetch_add(1, std::memory_order_seq_cst);
    if (try_acquire(index, task)) {
      parked_.fetch_sub(1, std::memory_order_seq_cst);
      execute(task);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(park_mutex_);
      RT_AUDIT_LOCK(audit::LockRank::kSchedPark);
      park_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               signals_.load(std::memory_order_seq_cst) != sig;
      });
    }
    parked_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void Scheduler::wait_group(detail::TaskGroupState& group) {
  const int self =
      detail::tl_worker_scheduler == this ? detail::tl_worker_index : -1;
  // External helpers must look like lanes of this scheduler while running a
  // task, so nested parallel_for calls inside it land here too.
  detail::Task task;
  while (group.pending.load(std::memory_order_acquire) != 0) {
    if (try_acquire(self, task)) {
      if (self >= 0) {
        execute(task);
      } else {
        SchedulerScope scope(*this);
        execute(task);
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(group.mutex);
    RT_AUDIT_LOCK(audit::LockRank::kSchedGroup);
    group.done_cv.wait_for(lock, detail::kWaitSlice, [&] {
      return group.pending.load(std::memory_order_acquire) == 0;
    });
  }
  // Synchronize with the last finisher before the caller may destroy the
  // group: its decrement-to-zero and notify run under this mutex, so
  // acquiring it here means every finisher is fully done with the state.
  // (pending never rises again once zero — only running group tasks and the
  // waiter itself submit.)
  {
    std::lock_guard<std::mutex> lock(group.mutex);
    RT_AUDIT_LOCK(audit::LockRank::kSchedGroup);
  }
  if (group.failed.load(std::memory_order_acquire)) {
    std::exception_ptr failure;
    {
      std::lock_guard<std::mutex> lock(group.mutex);
      RT_AUDIT_LOCK(audit::LockRank::kSchedGroup);
      failure = group.exception;
      group.exception = nullptr;
      group.failed.store(false, std::memory_order_release);  // reusable
    }
    std::rethrow_exception(failure);
  }
}

// ---- parallel_for -----------------------------------------------------------

namespace {

struct ForContext {
  FunctionRef<void(std::int64_t, std::int64_t)> fn;
  std::int64_t grain;
  Scheduler* scheduler;
  detail::TaskGroupState* group;
};

}  // namespace

void Scheduler::for_trampoline(void* ctx, std::int64_t begin,
                               std::int64_t end) {
  auto* c = static_cast<ForContext*>(ctx);
  // Halve until at most grain wide, publishing the upper half each round.
  // The split points depend only on the range and grain, so the leaf
  // partition is identical no matter who steals what.
  while (end - begin > c->grain) {
    const std::int64_t mid = begin + (end - begin) / 2;
    c->scheduler->submit(
        detail::Task{&Scheduler::for_trampoline, c, mid, end, c->group});
    end = mid;
  }
  c->fn(begin, end);
}

void Scheduler::parallel_for(std::int64_t n,
                             FunctionRef<void(std::int64_t, std::int64_t)> fn,
                             std::int64_t grain) {
  if (n <= 0) return;
  if (grain <= 0) {
    // ~4 leaves per lane: enough slack for stealing to balance uneven leaf
    // costs without drowning small loops in fork/join overhead.
    grain = std::max<std::int64_t>(
        1, n / (4 * static_cast<std::int64_t>(num_threads())));
  }
  if (num_threads() == 1 || n <= grain) {
    fn(0, n);
    return;
  }
  detail::TaskGroupState group;
  ForContext ctx{fn, grain, this, &group};
  // The caller keeps the lower halves and runs them depth-first. Its own
  // leaves execute outside the task machinery, so a throw here must be
  // parked in the group rather than unwinding past wait_group — stolen
  // subtasks still hold pointers into this frame until the group drains.
  try {
    for_trampoline(&ctx, 0, n);
  } catch (...) {
    detail::record_failure(group);
  }
  wait_group(group);  // rethrows the first failure, ours or a leaf's
}

// ---- TaskGroup / SchedulerScope ---------------------------------------------

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // The success path calls wait() itself; a straggler's exception during
    // unwind has nowhere to go.
  }
}

void TaskGroup::submit(detail::Task::Invoke invoke, void* ctx) {
  sched_.submit(detail::Task{invoke, ctx, 0, 0, &state_, priority_});
}

void TaskGroup::wait() { sched_.wait_group(state_); }

SchedulerScope::SchedulerScope(Scheduler& scheduler)
    : previous_(detail::tl_scope_scheduler) {
  detail::tl_scope_scheduler = &scheduler;
}

SchedulerScope::~SchedulerScope() {
  detail::tl_scope_scheduler = previous_;
}

}  // namespace rt
