#include "common/threadpool.hpp"

#include <algorithm>

namespace rt {

namespace {
// Set inside worker_loop so a nested parallel_for from a worker runs inline:
// enqueueing from a worker and waiting on the shared pending counter would
// deadlock once every worker blocks waiting for the others.
thread_local const ThreadPool* tl_worker_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int extra = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tl_worker_pool = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = queue_.back();
      queue_.pop_back();
    }
    (*task.fn)(task.begin, task.end);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const int threads = num_threads();
  if (threads == 1 || n == 1 || tl_worker_pool == this) {
    fn(0, n);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(threads, n);
  const std::int64_t chunk = (n + chunks - 1) / chunks;
  // The caller runs the first chunk itself; workers take the rest.
  std::int64_t first_end = std::min<std::int64_t>(chunk, n);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t begin = first_end; begin < n; begin += chunk) {
      queue_.push_back(Task{&fn, begin, std::min<std::int64_t>(begin + chunk, n)});
      ++pending_;
    }
  }
  cv_task_.notify_all();
  fn(0, first_end);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(
      std::max(1, static_cast<int>(std::thread::hardware_concurrency())));
  return pool;
}

void parallel_for(std::int64_t n,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(n, fn);
}

}  // namespace rt
