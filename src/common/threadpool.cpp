#include "common/threadpool.hpp"

namespace rt {

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(&Scheduler::instance());
  return pool;
}

void parallel_for(std::int64_t n,
                  FunctionRef<void(std::int64_t, std::int64_t)> fn,
                  std::int64_t grain) {
  Scheduler::current().parallel_for(n, fn, grain);
}

}  // namespace rt
