#pragma once
// Result-table assembly and rendering (stdout + CSV) used by the benchmark
// harness to print the rows/series the paper reports.

#include <string>
#include <variant>
#include <vector>

namespace rt {

/// A cell is a string, an integer, or a double (rendered with fixed precision).
using Cell = std::variant<std::string, long long, double>;

/// Column-oriented pretty printer for experiment results.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must have exactly one cell per column.
  void add_row(std::vector<Cell> row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

  /// Number of fractional digits used when rendering doubles (default 4).
  void set_precision(int digits) { precision_ = digits; }

  /// Renders an aligned ASCII table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  /// Writes the CSV rendering to a file. Returns false on I/O failure.
  bool save_csv(const std::string& path) const;

 private:
  std::string render_cell(const Cell& c) const;

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace rt
