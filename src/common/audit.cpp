// RT_AUDIT runtime hooks: counting global allocator + lock-order assertions.
// This entire translation unit is empty unless the build sets RT_AUDIT (see
// common/audit.hpp for the contract and CMakeLists.txt for the option).
#include "common/audit.hpp"

#if RT_AUDIT

#include <cstdio>
#include <cstdlib>
#include <new>

namespace rt {
namespace audit {

namespace {

// Thread-local so concurrent tests do not see each other's allocations and
// the counters need no synchronization. `depth` gates counting: with no
// guard live, the replaced operator new is one thread_local load slower than
// the default — cheap enough to leave on for every RT_AUDIT test run.
thread_local std::int64_t tl_guard_depth = 0;
thread_local std::int64_t tl_alloc_count = 0;

// Lock-rank stack. Depth 8 is far beyond any sane nesting; overflow aborts
// loudly rather than silently dropping audits.
constexpr int kMaxHeldLocks = 8;
thread_local int tl_held_ranks[kMaxHeldLocks];
thread_local int tl_held_count = 0;

[[noreturn]] void audit_abort(const char* what, long a, long b) {
  // fprintf, not iostreams: this can fire inside operator new.
  std::fprintf(stderr, "RT_AUDIT violation: %s (%ld, %ld)\n", what, a, b);
  std::abort();
}

void* counted_alloc(std::size_t size) {
  if (tl_guard_depth > 0) ++tl_alloc_count;
  // Never return nullptr for the throwing forms; malloc(0) may.
  void* p = std::malloc(size > 0 ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  if (tl_guard_depth > 0) ++tl_alloc_count;
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + a - 1) / a * a;
  void* p = std::aligned_alloc(a, rounded > 0 ? rounded : a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

AllocGuard::AllocGuard(const char* region)
    : region_(region), start_(tl_alloc_count) {
  ++tl_guard_depth;
}

AllocGuard::~AllocGuard() { --tl_guard_depth; }

std::int64_t AllocGuard::allocations() const {
  return tl_alloc_count - start_;
}

LockOrderGuard::LockOrderGuard(LockRank rank) : rank_(rank) {
  const int r = static_cast<int>(rank);
  if (tl_held_count >= kMaxHeldLocks) {
    audit_abort("lock rank stack overflow", r, tl_held_count);
  }
  if (tl_held_count > 0 && tl_held_ranks[tl_held_count - 1] >= r) {
    audit_abort("lock acquired out of rank order (held, acquiring)",
                tl_held_ranks[tl_held_count - 1], r);
  }
  tl_held_ranks[tl_held_count++] = r;
}

LockOrderGuard::~LockOrderGuard() {
  if (tl_held_count <= 0 ||
      tl_held_ranks[tl_held_count - 1] != static_cast<int>(rank_)) {
    audit_abort("lock rank released out of order", static_cast<int>(rank_),
                tl_held_count);
  }
  --tl_held_count;
}

}  // namespace audit
}  // namespace rt

// ---- replaced global allocator ----------------------------------------------
// All eight replaceable forms forward to the two counted allocators so no
// allocation path escapes the tally. Deletes must pair with malloc/
// aligned_alloc above.

void* operator new(std::size_t size) { return rt::audit::counted_alloc(size); }
void* operator new[](std::size_t size) {
  return rt::audit::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return rt::audit::counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return rt::audit::counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return rt::audit::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return rt::audit::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // RT_AUDIT
