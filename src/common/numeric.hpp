#pragma once
// Shared numeric constants. C++20 <numbers> supplies pi where available;
// toolchains that predate the header get the literal so the three call sites
// (rng, synth, optim cosine schedule) compile everywhere.

#if defined(__has_include)
#if __has_include(<numbers>)
#include <numbers>
#endif
#endif

// <numbers> exists on pre-C++20 standard libraries but is empty there, so
// gate on the feature-test macro it defines, not on the header's presence.
#if defined(__cpp_lib_math_constants) && __cpp_lib_math_constants >= 201907L
#define RT_HAS_STD_NUMBERS 1
#endif

namespace rt {

#ifdef RT_HAS_STD_NUMBERS
inline constexpr float kPi = std::numbers::pi_v<float>;
#else
inline constexpr float kPi = 3.14159265358979323846f;
#endif

inline constexpr float kTwoPi = 2.0f * kPi;

}  // namespace rt
