#pragma once
// Wall-clock timing helper for experiment progress reporting.

#include <chrono>

namespace rt {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rt
