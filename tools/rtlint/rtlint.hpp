#pragma once
// rtlint — the repo-native static-analysis pass behind `scripts/check.sh
// --lint` and the `rtlint` ctest suite.
//
// The library's production-scale claims rest on invariants that no compiler
// checks: kernel hot paths must never block, RT_HOT functions must never
// allocate, every atomic in the scheduler/serving layer must name its memory
// order, and nothing outside common/rng may introduce nondeterminism. Those
// invariants used to be enforced by reviewer vigilance; rtlint encodes them
// as named, individually-suppressible rules and fails the gate instead.
//
// Scope: a token-level scanner (comments, strings, and preprocessor
// directives are understood; no libclang, no full parse) with lightweight
// scope tracking — enough to follow an `RT_HOT` annotation to its function
// body across a constructor-initializer list and nested braces. Rules are
// deliberately syntactic approximations: they catch the constructs named in
// the rule, not every semantic equivalent, and a documented suppression
// comment is the escape hatch when a flagged construct is intentional:
//
//   thread_local std::vector<float> wpack;   // warm-up only
//   wpack.resize(bytes);  // rtlint: allow(R2) grows once per thread
//
// `// rtlint: allow(R2)` suppresses on its own line;
// `// rtlint: allow-next-line(R2,R3)` suppresses on the following line.
//
// Rule catalogue (see DESIGN.md "Correctness tooling" for the rationale):
//   R1  no blocking synchronization in kernel hot paths (src/linalg/,
//       src/engine/plan.cpp): std::mutex, condition_variable, lock/unique/
//       scoped/shared locks, future/promise, thread spawns, sleeps.
//   R2  no heap allocation constructs inside functions annotated RT_HOT:
//       new, malloc-family, std::vector growth (push_back/emplace_back/
//       resize/reserve), make_unique/make_shared, std::function.
//   R3  every std::atomic load/store/RMW in src/common/scheduler.*,
//       src/serving/, src/registry/, and src/net/ must name an explicit
//       std::memory_order.
//   R4  no nondeterminism sources outside src/common/rng.*: rand/srand,
//       std::random_device, time(), system_clock, unordered containers
//       (iteration order feeds results).
//   R5  header hygiene: headers start with #pragma once, never contain
//       `using namespace`, and no file reaches uphill with #include "../".

#include <string>
#include <vector>

namespace rtlint {

enum class Rule { kR1, kR2, kR3, kR4, kR5 };

/// Short stable name ("R1") used in reports and suppression comments.
const char* rule_name(Rule rule);
/// One-line description for --explain output.
const char* rule_summary(Rule rule);

/// Which rule sets apply to one file. The CLI derives this from the repo-
/// relative path via classify(); tests construct it directly so fixtures can
/// exercise any rule regardless of where they live.
struct FileKind {
  bool header = false;            ///< R5 applies (plus R5c include check)
  bool kernel_hot_path = false;   ///< R1 applies
  bool ordered_atomics = false;   ///< R3 applies
  bool rng_exempt = false;        ///< R4 skipped (src/common/rng.*)
};

/// Path-based classification, matching the repo layout. `path` must be
/// repo-relative with forward slashes (e.g. "src/linalg/gemm.cpp").
FileKind classify(const std::string& path);

struct Finding {
  Rule rule = Rule::kR1;
  std::string file;     ///< as passed to lint_source
  int line = 0;         ///< 1-based
  std::string message;  ///< human-readable, names the offending construct
};

/// Lints one in-memory translation unit. `display_path` is used only for
/// reporting. Findings are ordered by line.
std::vector<Finding> lint_source(const std::string& display_path,
                                 const std::string& content,
                                 const FileKind& kind);

/// Reads and lints a file on disk; throws std::runtime_error if unreadable.
std::vector<Finding> lint_file(const std::string& path, const FileKind& kind);

/// Formats a finding as "file:line: [Rn] message".
std::string format_finding(const Finding& finding);

}  // namespace rtlint
