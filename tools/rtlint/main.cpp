// rtlint CLI — lints the given files/directories and exits nonzero when any
// finding survives suppression. Wired as a ctest suite over src/ and as the
// scripts/check.sh --lint gate.
//
//   rtlint [--root DIR] [--explain] [--quiet] <file-or-dir>...
//
// --root DIR   repo root used to derive each file's repo-relative path (rule
//              applicability is path-based; defaults to the current dir).
// --explain    print the rule catalogue and exit.
// --quiet      print only the finding count summary.

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "rtlint.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".h";
}

/// Path relative to root with forward slashes (classification key).
std::string relative_key(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || rel.native().rfind("..", 0) == 0) rel = file;
  return rel.generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool quiet = false;
  std::vector<fs::path> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--explain") {
      for (rtlint::Rule r :
           {rtlint::Rule::kR1, rtlint::Rule::kR2, rtlint::Rule::kR3,
            rtlint::Rule::kR4, rtlint::Rule::kR5}) {
        std::cout << rtlint::rule_name(r) << "  " << rtlint::rule_summary(r)
                  << "\n";
      }
      std::cout << "suppress with `// rtlint: allow(Rn)` on the flagged line "
                   "or `// rtlint: allow-next-line(Rn)` above it\n";
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rtlint: unknown flag " << arg << "\n"
                << "usage: rtlint [--root DIR] [--explain] [--quiet] "
                   "<file-or-dir>...\n";
      return 2;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    std::cerr << "usage: rtlint [--root DIR] [--explain] [--quiet] "
                 "<file-or-dir>...\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& input : inputs) {
    if (fs::is_directory(input)) {
      for (const auto& entry : fs::recursive_directory_iterator(input)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(input)) {
      files.push_back(input);
    } else {
      std::cerr << "rtlint: no such file or directory: " << input << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t findings = 0;
  for (const fs::path& file : files) {
    const std::string key = relative_key(file, root);
    const rtlint::FileKind kind = rtlint::classify(key);
    std::vector<rtlint::Finding> file_findings;
    try {
      file_findings = rtlint::lint_file(file.string(), kind);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    // Report repo-relative paths so output is stable across checkouts.
    for (rtlint::Finding f : file_findings) {
      f.file = key;
      if (!quiet) std::cout << rtlint::format_finding(f) << "\n";
      ++findings;
    }
  }
  if (findings > 0) {
    std::cout << "rtlint: " << findings << " finding"
              << (findings == 1 ? "" : "s") << " across " << files.size()
              << " files\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "rtlint: clean (" << files.size() << " files)\n";
  }
  return 0;
}
