#include "rtlint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace rtlint {

namespace {

// ---- token stream -----------------------------------------------------------

enum class TokKind {
  kIdentifier,  ///< identifiers and keywords
  kPunct,       ///< one operator/punctuator character sequence
  kNumber,
  kDirective,  ///< one whole preprocessor line, text without the newline
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based
};

/// Lexed file: tokens with comments stripped but suppression directives and
/// raw comment lines retained on the side.
struct Lexed {
  std::vector<Token> tokens;
  /// line -> rules suppressed on that line (from `rtlint: allow(...)` on the
  /// line and `rtlint: allow-next-line(...)` on the previous one).
  std::map<int, std::set<Rule>> suppressed;
  int first_code_line = 0;        ///< first non-comment, non-blank line
  std::string first_directive;    ///< text of the first preprocessor line
  int first_directive_line = 0;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses "R1,R2" (case-insensitive, spaces allowed) into rules.
std::set<Rule> parse_rule_list(const std::string& text) {
  std::set<Rule> rules;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if ((text[i] == 'R' || text[i] == 'r') && i + 1 < text.size() &&
        std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
      switch (text[i + 1]) {
        case '1': rules.insert(Rule::kR1); break;
        case '2': rules.insert(Rule::kR2); break;
        case '3': rules.insert(Rule::kR3); break;
        case '4': rules.insert(Rule::kR4); break;
        case '5': rules.insert(Rule::kR5); break;
        default: break;
      }
      ++i;
    }
  }
  return rules;
}

/// Records any `rtlint: allow(...)` / `rtlint: allow-next-line(...)`
/// directive found in one comment's text.
void scan_comment(const std::string& comment, int line, Lexed& out) {
  const std::string kTag = "rtlint:";
  std::size_t at = comment.find(kTag);
  if (at == std::string::npos) return;
  std::size_t pos = at + kTag.size();
  while (pos < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[pos]))) {
    ++pos;
  }
  const bool next_line = comment.compare(pos, 15, "allow-next-line") == 0;
  const bool same_line = !next_line && comment.compare(pos, 5, "allow") == 0;
  if (!next_line && !same_line) return;
  const std::size_t open = comment.find('(', pos);
  if (open == std::string::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  const std::set<Rule> rules =
      parse_rule_list(comment.substr(open + 1, close - open - 1));
  const int target = next_line ? line + 1 : line;
  out.suppressed[target].insert(rules.begin(), rules.end());
}

/// Token-level scan of one translation unit. Handles //- and /* */-comments,
/// string/char literals (including basic raw strings), and preprocessor
/// lines (captured whole, with continuations). Good enough for the rules'
/// syntactic matching; no macro expansion is performed.
Lexed lex(const std::string& src) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto note_code_line = [&] {
    if (out.first_code_line == 0) out.first_code_line = line;
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: capture the whole (continued) line.
    if (c == '#') {
      const int dline = line;
      std::string text;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          text += ' ';
          i += 2;
          ++line;
          continue;
        }
        text += src[i++];
      }
      note_code_line();
      if (out.first_directive.empty()) {
        out.first_directive = text;
        out.first_directive_line = dline;
      }
      out.tokens.push_back({TokKind::kDirective, text, dline});
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int cline = line;
      std::size_t end = src.find('\n', i);
      if (end == std::string::npos) end = n;
      scan_comment(src.substr(i, end - i), cline, out);
      i = end;
      continue;
    }
    // Block comment (may span lines; a directive inside applies per line).
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = i + 2;
      std::string text;
      int cline = line;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') {
          scan_comment(text, cline, out);
          text.clear();
          ++line;
          cline = line;
        } else {
          text += src[j];
        }
        ++j;
      }
      scan_comment(text, cline, out);
      i = j + 2 > n ? n : j + 2;
      continue;
    }
    note_code_line();
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, j);
      if (end == std::string::npos) end = n;
      for (std::size_t p = i; p < std::min(n, end + closer.size()); ++p) {
        if (src[p] == '\n') ++line;
      }
      i = std::min(n, end + closer.size());
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;  // unterminated; keep line count sane
        ++j;
      }
      i = j + 1 > n ? n : j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::kIdentifier, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: group "::" so qualified-name matching is one token pair.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      out.tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---- rule helpers -----------------------------------------------------------

struct Ctx {
  const Lexed& lx;
  const std::string& path;
  std::vector<Finding>* findings;

  bool suppressed(Rule rule, int line) const {
    auto it = lx.suppressed.find(line);
    return it != lx.suppressed.end() && it->second.count(rule) > 0;
  }
  void report(Rule rule, int line, std::string message) const {
    if (suppressed(rule, line)) return;
    findings->push_back({rule, path, line, std::move(message)});
  }
};

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdentifier && t.text == text;
}

/// True when tokens[i] is qualified as std::X (i points at X).
bool std_qualified(const std::vector<Token>& toks, std::size_t i) {
  return i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
         toks[i - 1].text == "::" && is_ident(toks[i - 2], "std");
}

/// Skips a balanced (), {}, or <>-free region starting at an opener; returns
/// the index one past the matching closer (or toks.size()).
std::size_t skip_balanced(const std::vector<Token>& toks, std::size_t open,
                          char open_ch, char close_ch) {
  int depth = 0;
  std::size_t i = open;
  for (; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kPunct) continue;
    if (toks[i].text.size() == 1 && toks[i].text[0] == open_ch) ++depth;
    if (toks[i].text.size() == 1 && toks[i].text[0] == close_ch) {
      if (--depth == 0) return i + 1;
    }
  }
  return i;
}

// ---- R1: blocking synchronization in kernel hot paths -----------------------

const std::set<std::string>& r1_banned_std() {
  static const std::set<std::string> kBanned{
      "mutex", "recursive_mutex", "timed_mutex", "shared_mutex",
      "condition_variable", "condition_variable_any", "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock", "future", "promise",
      "thread", "jthread", "binary_semaphore", "counting_semaphore",
      "latch", "barrier"};
  return kBanned;
}

void run_r1(const Ctx& ctx) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::kIdentifier) continue;
    if (std_qualified(toks, i) && r1_banned_std().count(toks[i].text) > 0) {
      ctx.report(Rule::kR1, toks[i].line,
                 "blocking synchronization (std::" + toks[i].text +
                     ") in a kernel hot path; kernels must stay lock-free — "
                     "push coordination up to the scheduler layer");
    } else if (toks[i].text == "sleep_for" || toks[i].text == "sleep_until") {
      ctx.report(Rule::kR1, toks[i].line,
                 "blocking wait (" + toks[i].text + ") in a kernel hot path");
    }
  }
}

// ---- R2: heap allocation inside RT_HOT functions ----------------------------

/// Allocation constructs banned inside RT_HOT bodies. Method-name matches
/// (push_back etc.) are syntactic: any receiver counts, because the rule's
/// point is that growth-capable containers do not belong on a hot path.
const std::map<std::string, const char*>& r2_banned() {
  static const std::map<std::string, const char*> kBanned{
      {"new", "operator new"},
      {"malloc", "malloc"},
      {"calloc", "calloc"},
      {"realloc", "realloc"},
      {"aligned_alloc", "aligned_alloc"},
      {"strdup", "strdup"},
      {"push_back", "std::vector growth (push_back)"},
      {"emplace_back", "std::vector growth (emplace_back)"},
      {"resize", "container resize"},
      {"reserve", "container reserve"},
      {"make_unique", "make_unique"},
      {"make_shared", "make_shared"},
  };
  return kBanned;
}

/// Finds the body of the function an RT_HOT annotation precedes: the first
/// `{` at paren depth zero after the parameter list, skipping a constructor
/// initializer list (whose member initializers may themselves use parens or
/// braces). Returns {body_open_index, function_name} or {npos, ""} when the
/// annotation precedes a declaration only.
std::pair<std::size_t, std::string> find_hot_body(
    const std::vector<Token>& toks, std::size_t hot) {
  std::string name;
  std::size_t i = hot + 1;
  int paren = 0;
  bool saw_params = false;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kIdentifier && paren == 0 && !saw_params) {
      name = t.text;  // last identifier before the parameter list
    }
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == ";" && paren == 0) return {std::string::npos, ""};
    if (t.text == "(") ++paren;
    if (t.text == ")") {
      if (--paren == 0) saw_params = true;
    }
    if (t.text == "=" && paren == 0 && saw_params) {
      return {std::string::npos, ""};  // = default / = delete / = 0
    }
    if (t.text == ":" && paren == 0 && saw_params) {
      // Constructor initializer list: initializers are name(…) or name{…}
      // separated by commas; the body brace follows the last one.
      std::size_t j = i + 1;
      while (j < toks.size()) {
        // Skip the initializer's qualified name / template arguments.
        while (j < toks.size() && (toks[j].kind == TokKind::kIdentifier ||
                                   toks[j].text == "::" ||
                                   toks[j].text == "<" ||
                                   toks[j].text == ">" ||
                                   toks[j].text == ",")) {
          // A comma inside template args vs between initializers is
          // ambiguous token-wise; initializer commas are followed by an
          // identifier then ( or {, which this loop also consumes.
          ++j;
        }
        if (j >= toks.size()) return {std::string::npos, ""};
        if (toks[j].text == "(") {
          j = skip_balanced(toks, j, '(', ')');
        } else if (toks[j].text == "{") {
          // Either a brace-initializer or the body. Body iff the previous
          // token closed an initializer (')' or '}') — a brace directly
          // after an identifier is that member's initializer.
          if (toks[j - 1].text == ")" || toks[j - 1].text == "}") {
            return {j, name};
          }
          j = skip_balanced(toks, j, '{', '}');
        } else {
          return {std::string::npos, ""};
        }
        if (j < toks.size() && toks[j].text == "{") return {j, name};
      }
      return {std::string::npos, ""};
    }
    if (t.text == "{" && paren == 0 && saw_params) return {i, name};
  }
  return {std::string::npos, ""};
}

void run_r2(const Ctx& ctx) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_ident(toks[i], "RT_HOT")) continue;
    const auto [body, name] = find_hot_body(toks, i);
    if (body == std::string::npos) continue;
    const std::size_t end = skip_balanced(toks, body, '{', '}');
    for (std::size_t j = body + 1; j + 1 < end; ++j) {
      const Token& t = toks[j];
      if (t.kind != TokKind::kIdentifier) continue;
      const auto hit = r2_banned().find(t.text);
      if (hit != r2_banned().end()) {
        // `new` is a keyword; everything else must look like a call.
        if (t.text != "new" && !(j + 1 < end && toks[j + 1].text == "(") &&
            !(j + 1 < end && toks[j + 1].text == "<")) {
          continue;
        }
        ctx.report(Rule::kR2, t.line,
                   std::string("heap allocation (") + hit->second +
                       ") inside RT_HOT function '" + name +
                       "'; hot paths must run allocation-free after warm-up");
      } else if (t.text == "function" && std_qualified(toks, j)) {
        ctx.report(Rule::kR2, t.line,
                   "std::function inside RT_HOT function '" + name +
                       "' (type-erased callables allocate); use "
                       "FunctionRef or a template parameter");
      }
    }
    i = end;
  }
}

// ---- R3: explicit memory orders ---------------------------------------------

/// Atomic member operations that take a memory_order. `wait`/`notify_*`/
/// `clear` are deliberately absent: they collide with condition-variable and
/// container members in exactly the files this rule watches, and
/// std::atomic::wait is not used in this codebase.
const std::set<std::string>& r3_atomic_ops() {
  static const std::set<std::string> kOps{
      "load",          "store",
      "exchange",      "fetch_add",
      "fetch_sub",     "fetch_and",
      "fetch_or",      "fetch_xor",
      "compare_exchange_strong", "compare_exchange_weak",
      "test_and_set"};
  return kOps;
}

void run_r3(const Ctx& ctx) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier || r3_atomic_ops().count(t.text) == 0) {
      continue;
    }
    // Must be a member call: preceded by '.' or '->' and followed by '('.
    const bool member =
        i >= 1 && toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "." ||
         (toks[i - 1].text == ">" && i >= 2 && toks[i - 2].text == "-"));
    if (!member || toks[i + 1].text != "(") continue;
    const std::size_t close = skip_balanced(toks, i + 1, '(', ')');
    bool has_order = false;
    for (std::size_t j = i + 2; j + 1 < close; ++j) {
      if (toks[j].kind == TokKind::kIdentifier &&
          toks[j].text.rfind("memory_order", 0) == 0) {
        has_order = true;
        break;
      }
    }
    if (has_order) continue;
    ctx.report(Rule::kR3, t.line,
               "atomic ." + t.text +
                   "() without an explicit std::memory_order; seq_cst-by-"
                   "default drift hides the synchronization design — name "
                   "the order (and justify it in a comment)");
  }
}

// ---- R4: nondeterminism sources ---------------------------------------------

void run_r4(const Ctx& ctx) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;
    const bool call = i + 1 < toks.size() && toks[i + 1].text == "(";
    if ((t.text == "rand" || t.text == "srand" || t.text == "rand_r" ||
         t.text == "drand48" || t.text == "time" || t.text == "clock") &&
        call) {
      // Member calls like timer.time() are fine; only free/std calls count.
      const bool member = i >= 1 && (toks[i - 1].text == "." ||
                                     (toks[i - 1].text == ">" && i >= 2 &&
                                      toks[i - 2].text == "-"));
      if (member) continue;
      ctx.report(Rule::kR4, t.line,
                 "nondeterminism source (" + t.text +
                     "()) outside common/rng; seed every stream through "
                     "rt::Rng so runs replay bit-for-bit");
      continue;
    }
    if (t.text == "random_device") {
      ctx.report(Rule::kR4, t.line,
                 "std::random_device outside common/rng; hardware entropy "
                 "breaks replayability — derive seeds from rt::Rng");
      continue;
    }
    if (t.text == "system_clock") {
      ctx.report(Rule::kR4, t.line,
                 "std::chrono::system_clock outside common/rng; wall-clock "
                 "values feeding results are nondeterministic (steady_clock "
                 "is fine for latencies/deadlines)");
      continue;
    }
    if (t.text == "unordered_map" || t.text == "unordered_set" ||
        t.text == "unordered_multimap" || t.text == "unordered_multiset") {
      ctx.report(Rule::kR4, t.line,
                 "std::" + t.text +
                     " — iteration order is unspecified and has fed "
                     "nondeterministic results before; use a sorted "
                     "container, or suppress with a comment proving "
                     "iteration order never escapes");
    }
  }
}

// ---- R5: header hygiene -----------------------------------------------------

void run_r5(const Ctx& ctx, const FileKind& kind) {
  const auto& toks = ctx.lx.tokens;
  if (kind.header) {
    const std::string& first = ctx.lx.first_directive;
    const bool pragma_once =
        first.rfind("#pragma", 0) == 0 &&
        first.find("once") != std::string::npos;
    if (!pragma_once || ctx.lx.first_directive_line != ctx.lx.first_code_line) {
      ctx.report(Rule::kR5, std::max(1, ctx.lx.first_code_line),
                 "header must open with #pragma once before any other code");
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (is_ident(toks[i], "using") && is_ident(toks[i + 1], "namespace")) {
        ctx.report(Rule::kR5, toks[i].line,
                   "`using namespace` in a header leaks into every includer");
      }
    }
  }
  for (const Token& t : toks) {
    if (t.kind == TokKind::kDirective &&
        t.text.find("include") != std::string::npos &&
        t.text.find("\"../") != std::string::npos) {
      ctx.report(Rule::kR5, t.line,
                 "uphill relative #include \"../…\"; include repo-rooted "
                 "paths (the build adds src/ to the include path)");
    }
  }
}

}  // namespace

// ---- public API -------------------------------------------------------------

const char* rule_name(Rule rule) {
  switch (rule) {
    case Rule::kR1: return "R1";
    case Rule::kR2: return "R2";
    case Rule::kR3: return "R3";
    case Rule::kR4: return "R4";
    case Rule::kR5: return "R5";
  }
  return "R?";
}

const char* rule_summary(Rule rule) {
  switch (rule) {
    case Rule::kR1:
      return "no blocking synchronization in kernel hot paths "
             "(src/linalg/, src/engine/plan.cpp)";
    case Rule::kR2:
      return "no heap allocation constructs inside RT_HOT functions";
    case Rule::kR3:
      return "every atomic op in scheduler/serving/registry/net names an "
             "explicit std::memory_order";
    case Rule::kR4:
      return "no nondeterminism sources outside src/common/rng.*";
    case Rule::kR5:
      return "header hygiene: #pragma once first, no `using namespace`, "
             "no uphill includes";
  }
  return "";
}

FileKind classify(const std::string& path) {
  FileKind kind;
  auto ends_with = [&](const char* suffix) {
    const std::string s(suffix);
    return path.size() >= s.size() &&
           path.compare(path.size() - s.size(), s.size(), s) == 0;
  };
  auto starts_with = [&](const char* prefix) {
    return path.rfind(prefix, 0) == 0;
  };
  kind.header = ends_with(".hpp") || ends_with(".h");
  kind.kernel_hot_path =
      starts_with("src/linalg/") || path == "src/engine/plan.cpp";
  kind.ordered_atomics = starts_with("src/common/scheduler.") ||
                         starts_with("src/serving/") ||
                         starts_with("src/registry/") ||
                         starts_with("src/net/");
  kind.rng_exempt = starts_with("src/common/rng.");
  return kind;
}

std::vector<Finding> lint_source(const std::string& display_path,
                                 const std::string& content,
                                 const FileKind& kind) {
  const Lexed lx = lex(content);
  std::vector<Finding> findings;
  Ctx ctx{lx, display_path, &findings};
  if (kind.kernel_hot_path) run_r1(ctx);
  run_r2(ctx);  // RT_HOT bodies are checked wherever they appear
  if (kind.ordered_atomics) run_r3(ctx);
  if (!kind.rng_exempt) run_r4(ctx);
  run_r5(ctx, kind);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const FileKind& kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("rtlint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lint_source(path, buf.str(), kind);
}

std::string format_finding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << rule_name(finding.rule)
      << "] " << finding.message;
  return out.str();
}

}  // namespace rtlint
