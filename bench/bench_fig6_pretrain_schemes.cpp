// Fig. 6: is adversarial pretraining necessary? Compares OMP tickets drawn
// from naturally / adversarially / randomized-smoothing pretrained
// MicroResNet50, transferred with whole-model finetuning — extended with two
// further robustifiers (TRADES and Free-AT) beyond the paper's pair.
//
// Paper shape to reproduce: adversarial > randomized smoothing > natural —
// robustness priors induced by either robust training algorithm are
// inherited by the tickets, with PGD the strongest. The two extra schemes
// probe the boundary of "properly induced": Free-AT's recycled-gradient
// inner maximization and TRADES' KL bootstrap both deliver only PARTIAL
// robustness at this micro pretraining budget (source adv-acc ~0.2 vs
// PGD's ~0.75), so their tickets are expected to track their measured
// robustness, not their reputation — the same lesson as the epsilon
// ablation.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 6 — pretraining schemes (R50, OMP)",
              "ticket transferability tracks the STRENGTH of the induced "
              "robustness prior: PGD-AT (adv-acc ~0.75) clearly first; "
              "weakly-robustified schemes (rand-smooth / free-adv / trades "
              "at this budget) cluster above or near natural");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  const std::vector<rt::PretrainScheme> schemes = {
      rt::PretrainScheme::kNatural,
      rt::PretrainScheme::kRandomizedSmoothing,
      rt::PretrainScheme::kFreeAdversarial,
      rt::PretrainScheme::kTrades,
      rt::PretrainScheme::kAdversarial,
  };

  rt::Table table({"task", "sparsity", "scheme", "finetune_acc"});
  rt::Table summary({"scheme", "mean_acc"});
  std::vector<double> sums(schemes.size(), 0.0);
  int count = 0;

  const std::vector<std::string> tasks =
      prof.quick() ? std::vector<std::string>{"cifar10"}
                   : std::vector<std::string>{"cifar10", "cifar100"};
  for (const std::string& task_name : tasks) {
    const rt::TaskData task =
        lab.downstream(task_name, prof.down_train, prof.down_test);
    for (float sparsity : prof.omp_grid) {
      for (std::size_t si = 0; si < schemes.size(); ++si) {
        rt::Rng rng(606);
        auto ticket = lab.omp_ticket("r50", schemes[si], sparsity);
        const double acc = rt::finetune_whole_model(
            *ticket, task, rtb::finetune_config(), rng);
        table.add_row({task_name, static_cast<double>(sparsity),
                       std::string(rt::scheme_name(schemes[si])), 100.0 * acc});
        sums[si] += 100.0 * acc;
        std::printf("  %s s=%.2f %-12s acc %.2f\n", task_name.c_str(),
                    sparsity, rt::scheme_name(schemes[si]), 100.0 * acc);
      }
      ++count;
    }
  }
  for (std::size_t si = 0; si < schemes.size(); ++si) {
    summary.add_row({std::string(rt::scheme_name(schemes[si])),
                     sums[si] / count});
  }
  table.set_precision(2);
  summary.set_precision(2);
  rtb::emit(table, "fig6_pretrain_schemes");
  std::printf("\nMean accuracy by scheme (expect adversarial clearly first; "
              "the weakly-robustified schemes near or above natural):\n");
  rtb::emit(summary, "fig6_pretrain_schemes_summary");
  return 0;
}
