// Fig. 3: structured robust tickets (row / kernel / channel granularity)
// vs natural ones, MicroResNet50, under whole-model finetuning and linear
// evaluation.
//
// Paper shape to reproduce: (1) robust wins across all sparsity patterns and
// both evaluation paradigms; (2) coarser granularity inherits less of the
// robustness prior, so the robust-over-natural gain shrinks from row-wise to
// kernel-wise to channel-wise.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 3 — structured OMP tickets (R50)",
              "robust wins everywhere; gains shrink as granularity coarsens");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  const rt::Granularity granularities[] = {
      rt::Granularity::kRow, rt::Granularity::kKernel,
      rt::Granularity::kChannel};

  rt::Table table({"granularity", "eval", "task", "sparsity", "natural_acc",
                   "robust_acc", "robust_gain"});
  rt::Table gain_by_gran({"granularity", "eval", "mean_gain_pts"});

  for (const rt::Granularity g : granularities) {
    for (const bool linear : {false, true}) {
      double gain_sum = 0.0;
      int count = 0;
      const std::vector<std::string> tasks =
          prof.quick() ? std::vector<std::string>{"cifar10"}
                       : std::vector<std::string>{"cifar10", "cifar100"};
      for (const std::string& task_name : tasks) {
        const rt::TaskData task =
            lab.downstream(task_name, prof.down_train, prof.down_test);
        for (float sparsity : prof.structured_grid) {
          rt::Rng rng(31);
          auto natural = lab.omp_ticket("r50", rt::PretrainScheme::kNatural,
                                        sparsity, g);
          const double nat =
              linear
                  ? rt::linear_eval(*natural, task, rtb::linear_config(), rng)
                  : rt::finetune_whole_model(*natural, task,
                                             rtb::finetune_config(), rng);
          rt::Rng rng2(31);
          auto robust = lab.omp_ticket(
              "r50", rt::PretrainScheme::kAdversarial, sparsity, g);
          const double rob =
              linear
                  ? rt::linear_eval(*robust, task, rtb::linear_config(), rng2)
                  : rt::finetune_whole_model(*robust, task,
                                             rtb::finetune_config(), rng2);
          const char* eval_name = linear ? "linear" : "finetune";
          table.add_row({std::string(rt::granularity_name(g)),
                         std::string(eval_name), task_name,
                         static_cast<double>(sparsity), 100.0 * nat,
                         100.0 * rob, 100.0 * (rob - nat)});
          gain_sum += 100.0 * (rob - nat);
          ++count;
          std::printf("  %s/%s/%s s=%.2f  nat %.2f  rob %.2f\n",
                      rt::granularity_name(g), eval_name, task_name.c_str(),
                      sparsity, 100.0 * nat, 100.0 * rob);
        }
      }
      gain_by_gran.add_row({std::string(rt::granularity_name(g)),
                            std::string(linear ? "linear" : "finetune"),
                            gain_sum / count});
    }
  }
  table.set_precision(2);
  gain_by_gran.set_precision(2);
  rtb::emit(table, "fig3_structured");
  std::printf("\nMean gain by granularity (expect row >= kernel >= channel):\n");
  rtb::emit(gain_by_gran, "fig3_structured_summary");
  return 0;
}
