// Edge-deployment cost table (extends Fig. 3's motivation).
//
// Fig. 3 claims structured tickets "benefit the real-hardware acceleration";
// this bench quantifies that end-to-end for robust tickets at one matched
// sparsity: accuracy after finetuning, bytes on flash under the best storage
// encoding, and roofline latency/energy on three device profiles — plus the
// parts the cost model cannot fake: the channel ticket is physically shrunk
// by the compiler (measured wall-clock speedup) and quantized to int8
// (measured accuracy delta).
//
// Expected shape: finer granularity keeps more accuracy (element >= 2:4 >=
// row >= kernel >= channel, Fig. 3) while realizable speedup orders the
// other way round; int8 is ~lossless; the shrunk channel model matches the
// masked one exactly and runs measurably faster.
#include <map>

#include "bench_common.hpp"
#include "common/timer.hpp"
#include "data/synth.hpp"
#include "hw/cost_model.hpp"
#include "hw/quant.hpp"
#include "hw/shrink.hpp"
#include "hw/storage.hpp"
#include "prune/nm_sparsity.hpp"
#include "transfer/fewshot.hpp"

namespace {

double forward_seconds(rt::ResNet& model, const rt::Tensor& batch, int iters) {
  model.set_training(false);
  model.forward(batch);  // warmup
  rt::Timer timer;
  for (int i = 0; i < iters; ++i) model.forward(batch);
  return timer.seconds() / iters;
}

}  // namespace

int main() {
  rtb::banner("HW cost — deployment table for robust tickets (R50, ext. of "
              "Fig. 3)",
              "accuracy: element >= 2:4 >= row >= kernel >= channel; "
              "realizable speedup reversed; int8 ~lossless");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();
  const float sparsity = 0.5f;  // matched across granularities (2:4 is 0.5)
  const rt::TaskData task =
      lab.downstream("cifar10", prof.down_train, prof.down_test);

  const std::vector<rt::HardwareProfile> devices = {
      rt::edge_mcu_profile(), rt::mobile_npu_profile(),
      rt::sparse_cpu_profile()};

  rt::Table table({"pattern", "finetune_acc", "kept_params", "best_format",
                   "kbytes", "mcu_speedup", "npu_speedup", "cpu_speedup",
                   "npu_energy_uj"});
  table.set_precision(2);

  struct Row {
    std::string pattern;
    std::unique_ptr<rt::ResNet> ticket;
    rt::Granularity granularity;
    bool is_nm = false;
  };
  std::vector<Row> rows;
  for (rt::Granularity g :
       {rt::Granularity::kElement, rt::Granularity::kRow,
        rt::Granularity::kKernel, rt::Granularity::kChannel}) {
    Row row;
    row.pattern = rt::granularity_name(g);
    row.ticket =
        lab.omp_ticket("r50", rt::PretrainScheme::kAdversarial, sparsity, g);
    row.granularity = g;
    rows.push_back(std::move(row));
  }
  {
    Row row;
    row.pattern = "2:4";
    row.ticket = lab.dense_model("r50", rt::PretrainScheme::kAdversarial);
    rt::nm_prune(*row.ticket, {});
    row.granularity = rt::Granularity::kElement;
    row.is_nm = true;
    rows.push_back(std::move(row));
  }

  for (Row& row : rows) {
    rt::Rng rng(999);
    auto eval_copy = rt::clone_ticket(*row.ticket);
    const double acc = rt::finetune_whole_model(*eval_copy, task,
                                                rtb::finetune_config(), rng);
    const auto stats = row.ticket->stats(rt::kImageSize, rt::kImageSize);
    const double kept =
        static_cast<double>(stats.unmasked_prunable_params) /
        static_cast<double>(stats.prunable_params);

    // Storage: best format over the whole model's prunable weights.
    std::int64_t best_bytes = 0;
    std::map<std::string, int> format_votes;
    for (rt::Parameter* p : row.ticket->prunable_parameters()) {
      const rt::StorageFormat f = row.is_nm
                                      ? rt::StorageFormat::kBitmaskFp16
                                      : rt::best_format(*p);
      best_bytes += row.is_nm ? rt::nm_parameter_bytes(*p, 4)
                              : rt::parameter_bytes(*p, f);
      ++format_votes[rt::storage_format_name(f)];
    }
    std::string top_format = row.is_nm ? "nm-packed" : "";
    int top_votes = 0;
    if (!row.is_nm) {
      for (const auto& [name, votes] : format_votes) {
        if (votes > top_votes) {
          top_votes = votes;
          top_format = name;
        }
      }
    }

    std::vector<double> speedups;
    double npu_energy = 0.0;
    for (const rt::HardwareProfile& hw : devices) {
      const rt::CostEstimate c =
          row.is_nm ? rt::estimate_nm_cost(*row.ticket, rt::kImageSize,
                                           rt::kImageSize, hw, 4)
                    : rt::estimate_cost(*row.ticket, rt::kImageSize,
                                        rt::kImageSize, hw, row.granularity);
      speedups.push_back(c.realized_speedup);
      if (hw.name == "mobile-npu") npu_energy = c.energy_joules * 1e6;
    }

    table.add_row({row.pattern, 100.0 * acc, kept,
                   top_format, static_cast<double>(best_bytes) / 1024.0,
                   speedups[0], speedups[1], speedups[2], npu_energy});
    std::printf("  %-8s acc %.2f  kept %.2f  %s\n", row.pattern.c_str(),
                100.0 * acc, kept, top_format.c_str());
  }
  rtb::emit(table, "hw_cost_granularity");

  // ---- Channel ticket: shrink compiler + measured wall clock -------------
  std::printf("\nChannel-shrink compiler (measured, not modeled):\n");
  auto masked = lab.omp_ticket("r50", rt::PretrainScheme::kAdversarial, 0.7f,
                               rt::Granularity::kChannel);
  const rt::Dataset batch_src =
      rt::generate_dataset(rt::source_task_spec(), 32, 4242);
  auto shrunk = rt::clone_ticket(*masked);
  rt::Rng shrink_rng(31);
  rt::neutralize_dead_internal_channels(*masked);  // match functions exactly
  const rt::ShrinkReport report =
      rt::compile_for_deployment(*shrunk, shrink_rng);

  const int iters = prof.quick() ? 30 : 150;
  const double t_masked = forward_seconds(*masked, batch_src.images, iters);
  const double t_shrunk = forward_seconds(*shrunk, batch_src.images, iters);
  masked->set_training(false);
  shrunk->set_training(false);
  const float divergence = masked->forward(batch_src.images)
                               .linf_distance(shrunk->forward(batch_src.images));

  rt::Table shrink_table({"metric", "value"});
  shrink_table.set_precision(4);
  shrink_table.add_row({std::string("params_before"),
                        static_cast<long long>(report.params_before)});
  shrink_table.add_row({std::string("params_after"),
                        static_cast<long long>(report.params_after)});
  shrink_table.add_row({std::string("channels_removed"),
                        static_cast<long long>(report.channels_removed)});
  shrink_table.add_row({std::string("param_reduction"),
                        report.param_reduction()});
  shrink_table.add_row({std::string("masked_fwd_ms"), 1e3 * t_masked});
  shrink_table.add_row({std::string("shrunk_fwd_ms"), 1e3 * t_shrunk});
  shrink_table.add_row({std::string("measured_speedup"),
                        t_masked / t_shrunk});
  shrink_table.add_row({std::string("output_linf_divergence"),
                        static_cast<double>(divergence)});
  rtb::emit(shrink_table, "hw_cost_shrink");

  // ---- int8 PTQ on the element ticket ------------------------------------
  std::printf("\nPost-training int8 quantization (per-channel, measured):\n");
  rt::Rng q_rng(77);
  auto fp_ticket =
      lab.omp_ticket("r50", rt::PretrainScheme::kAdversarial, sparsity);
  const double acc_fp = rt::finetune_whole_model(*fp_ticket, task,
                                                 rtb::finetune_config(), q_rng);
  auto int8_ticket = rt::clone_ticket(*fp_ticket);
  const rt::QuantReport q = rt::quantize_model(*int8_ticket, {});
  const double acc_int8 =
      100.0 * rt::evaluate_accuracy(*int8_ticket, task.test);

  rt::Table quant_table({"metric", "value"});
  quant_table.set_precision(4);
  quant_table.add_row({std::string("fp32_acc"), 100.0 * acc_fp});
  quant_table.add_row({std::string("int8_acc"), acc_int8});
  quant_table.add_row({std::string("acc_delta"), acc_int8 - 100.0 * acc_fp});
  quant_table.add_row({std::string("mean_abs_weight_err"),
                       q.mean_abs_error});
  quant_table.add_row({std::string("int8_kbytes"),
                       static_cast<double>(q.int_storage_bytes) / 1024.0});
  quant_table.add_row(
      {std::string("fp16_kbytes"),
       static_cast<double>(rt::model_bytes(
           *int8_ticket, rt::StorageFormat::kDenseFp16)) /
           1024.0});
  rtb::emit(quant_table, "hw_cost_quant");
  return 0;
}
