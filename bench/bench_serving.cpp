// Serving front-end micro-benchmarks (google-benchmark): what the async
// coalescing layer costs and buys on the paper's deployment artifact — a
// 90%-sparse unstructured MicroResNet-18 ticket whose layers pack as CSR.
//
//   BM_ServerLatencyP50P99/shards   closed-loop single client, one 1-row
//                                   request at a time: the per-request
//                                   latency floor of the queue + coalescer +
//                                   serving-lane dispatch + future path,
//                                   reported as p50/p99 counters (us) read
//                                   from the server's own latency histogram
//                                   (ServerStats::latency) — the same
//                                   numbers an operator scrapes in
//                                   production, with no client-side timing.
//   BM_RegistryHotSwap              the rollout cost: a closed-loop client
//                                   against a registry-served model, first
//                                   at steady state, then while the
//                                   registry alternates zero-downtime
//                                   deploys between two published versions.
//                                   p99_steady_us vs p99_swap_us bounds the
//                                   latency tax a hot swap imposes on
//                                   in-flight traffic.
//   BM_ServerThroughputClients/     C clients each submit a burst of 1-row
//     clients/batched/shards        requests asynchronously and then drain
//                                   their futures. batched=0 serves every
//                                   request as its own micro-batch
//                                   (max_batch=1, the per-request baseline);
//                                   batched=1 lets the coalescer pack up to
//                                   16 rows, amortizing workspace checkout,
//                                   dispatch, and weight streaming across
//                                   the batch. The rows_per_batch counter
//                                   reports the achieved fill.
//
// scripts/check.sh --bench-json writes these to BENCH_serving.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "models/resnet.hpp"
#include "prune/baselines.hpp"
#include "registry/registry.hpp"
#include "serving/serving.hpp"
#include "tensor/tensor.hpp"

namespace {

/// The deployment artifact every serving bench runs: a 90%-per-layer-sparse
/// r18 whose convs pack as CSR (compiled at the default 16x16 geometry).
std::unique_ptr<rt::ResNet> sparse_r18_model(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto model = rt::make_micro_resnet18(10, rng);
  rt::layerwise_magnitude_prune(*model, 0.9f, rt::Granularity::kElement);
  model->set_training(false);
  return model;
}

std::shared_ptr<const rt::CompiledTicket> sparse_r18_plan() {
  return std::make_shared<const rt::CompiledTicket>(
      rt::Engine::compile(*sparse_r18_model(9)));
}

/// Histogram delta between two stats() snapshots of one server: the latency
/// distribution of exactly the requests completed in between.
rt::serving::LatencySnapshot snapshot_delta(
    const rt::serving::LatencySnapshot& after,
    const rt::serving::LatencySnapshot& before) {
  rt::serving::LatencySnapshot delta;
  delta.count = after.count - before.count;
  for (std::size_t i = 0; i < delta.buckets.size(); ++i) {
    delta.buckets[i] = after.buckets[i] - before.buckets[i];
  }
  return delta;
}

void BM_ServerLatencyP50P99(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto plan = sparse_r18_plan();
  rt::serving::ServerOptions opt;
  opt.shards = shards;
  opt.max_batch = 16;
  opt.max_delay_ms = 0.05;
  rt::serving::Server server(plan, opt);

  rt::Rng rng(11);
  const rt::Tensor x = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.predict(x));
  }
  // Quantiles come from the server's own log-scale histogram — no
  // client-side sample vector, and exactly what stats() exports.
  const rt::serving::LatencySnapshot lat = server.stats().latency;
  if (lat.count > 0) {
    state.counters["p50_us"] = lat.quantile_us(0.50);
    state.counters["p99_us"] = lat.quantile_us(0.99);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerLatencyP50P99)->Arg(1)->Arg(2)->UseRealTime();

void BM_ServerThroughputClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool batched = state.range(1) == 1;
  const int shards = static_cast<int>(state.range(2));
  auto plan = sparse_r18_plan();
  rt::serving::ServerOptions opt;
  opt.shards = shards;
  opt.max_batch = batched ? 16 : 1;
  // max_batch=1 fills every batch instantly, so the delay only matters for
  // the coalescing configuration.
  opt.max_delay_ms = batched ? 0.1 : 0.0;
  opt.queue_capacity_rows = 1 << 16;
  rt::serving::Server server(plan, opt);

  rt::Rng rng(12);
  const rt::Tensor x = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  constexpr int kRequestsPerClient = 64;

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        std::vector<std::future<rt::Tensor>> inflight;
        inflight.reserve(kRequestsPerClient);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          inflight.push_back(server.submit(rt::Tensor(x)));
        }
        for (auto& f : inflight) benchmark::DoNotOptimize(f.get());
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const rt::serving::ServerStats st = server.stats();
  if (st.batches > 0) {
    state.counters["rows_per_batch"] =
        static_cast<double>(st.batched_rows) / static_cast<double>(st.batches);
  }
  state.SetItemsProcessed(state.iterations() * clients * kRequestsPerClient);
}
BENCHMARK(BM_ServerThroughputClients)
    ->Args({1, 0, 1})  // single client, per-request baseline
    ->Args({1, 1, 1})  // single client, micro-batching
    ->Args({4, 1, 1})  // 4 clients sharing one shard
    ->Args({4, 1, 2})  // 4 clients over a 2-shard fleet
    ->UseRealTime();

void BM_RegistryHotSwap(benchmark::State& state) {
  rt::registry::RegistryOptions ropt;
  ropt.cache_root = "";  // hermetic: the bench never touches the disk cache
  rt::registry::Registry reg(ropt);
  auto v1 = sparse_r18_model(9);
  auto v2 = sparse_r18_model(10);
  reg.publish("r18", *v1);
  reg.publish("r18", *v2);

  rt::serving::ServerOptions opt;
  opt.max_batch = 16;
  opt.max_delay_ms = 0.05;
  rt::serving::Server& server = reg.serve("r18@1", opt);
  // Warm both compiled plans so the swap loop measures the swap itself, not
  // a first-demand ticket compilation.
  const auto plan1 = reg.compiled("r18@1");
  const auto plan2 = reg.compiled("r18@2");

  rt::Rng rng(13);
  const rt::Tensor x = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);

  // Steady-state baseline (untimed): the same closed loop with no deploys.
  constexpr int kSteadyRequests = 128;
  for (int i = 0; i < kSteadyRequests; ++i) {
    benchmark::DoNotOptimize(server.predict(x));
  }
  const rt::serving::LatencySnapshot steady = server.stats().latency;
  const double p99_steady_us = steady.quantile_us(0.99);

  // Timed phase: the registry alternates zero-downtime deploys under the
  // same closed-loop client; the histogram delta isolates this phase.
  std::int64_t swaps = 0;
  std::int64_t i = 0;
  for (auto _ : state) {
    if (i % 16 == 0) {
      reg.deploy(swaps % 2 == 0 ? "r18@2" : "r18@1");
      ++swaps;
    }
    ++i;
    benchmark::DoNotOptimize(server.predict(x));
  }
  const rt::serving::LatencySnapshot swap_phase =
      snapshot_delta(server.stats().latency, steady);
  if (swap_phase.count > 0) {
    state.counters["p99_steady_us"] = p99_steady_us;
    state.counters["p99_swap_us"] = swap_phase.quantile_us(0.99);
  }
  state.counters["swaps"] = static_cast<double>(swaps);
  // Every deploy re-demands a compiled ticket; with the bounded PlanCache
  // retaining both versions, each one is a hit — zero recompilations across
  // the whole swap phase.
  state.counters["plan_cache_hits"] =
      static_cast<double>(reg.plan_cache_stats().hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryHotSwap)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
