// Serving front-end micro-benchmarks (google-benchmark): what the async
// coalescing layer costs and buys on the paper's deployment artifact — a
// 90%-sparse unstructured MicroResNet-18 ticket whose layers pack as CSR.
//
//   BM_ServerLatencyP50P99/shards   closed-loop single client, one 1-row
//                                   request at a time: the per-request
//                                   latency floor of the queue + coalescer +
//                                   serving-lane dispatch + future path,
//                                   reported as p50/p99 counters (us).
//   BM_ServerThroughputClients/     C clients each submit a burst of 1-row
//     clients/batched/shards        requests asynchronously and then drain
//                                   their futures. batched=0 serves every
//                                   request as its own micro-batch
//                                   (max_batch=1, the per-request baseline);
//                                   batched=1 lets the coalescer pack up to
//                                   16 rows, amortizing workspace checkout,
//                                   dispatch, and weight streaming across
//                                   the batch. The rows_per_batch counter
//                                   reports the achieved fill.
//
// scripts/check.sh --bench-json writes these to BENCH_serving.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "models/resnet.hpp"
#include "prune/baselines.hpp"
#include "serving/serving.hpp"
#include "tensor/tensor.hpp"

namespace {

/// The deployment artifact every serving bench runs: a 90%-per-layer-sparse
/// r18 compiled at 16x16 (every conv packs as CSR).
std::shared_ptr<const rt::CompiledTicket> sparse_r18_plan() {
  rt::Rng rng(9);
  auto model = rt::make_micro_resnet18(10, rng);
  rt::layerwise_magnitude_prune(*model, 0.9f, rt::Granularity::kElement);
  model->set_training(false);
  return std::make_shared<const rt::CompiledTicket>(
      rt::Engine::compile(*model));
}

void BM_ServerLatencyP50P99(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  auto plan = sparse_r18_plan();
  rt::serving::ServerOptions opt;
  opt.shards = shards;
  opt.max_batch = 16;
  opt.max_delay_ms = 0.05;
  rt::serving::Server server(plan, opt);

  rt::Rng rng(11);
  const rt::Tensor x = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<double> latencies_us;
  latencies_us.reserve(1 << 14);
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(server.predict(x));
    const auto t1 = std::chrono::steady_clock::now();
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto pct = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[idx];
  };
  if (!latencies_us.empty()) {
    state.counters["p50_us"] = pct(0.50);
    state.counters["p99_us"] = pct(0.99);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerLatencyP50P99)->Arg(1)->Arg(2)->UseRealTime();

void BM_ServerThroughputClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const bool batched = state.range(1) == 1;
  const int shards = static_cast<int>(state.range(2));
  auto plan = sparse_r18_plan();
  rt::serving::ServerOptions opt;
  opt.shards = shards;
  opt.max_batch = batched ? 16 : 1;
  // max_batch=1 fills every batch instantly, so the delay only matters for
  // the coalescing configuration.
  opt.max_delay_ms = batched ? 0.1 : 0.0;
  opt.queue_capacity_rows = 1 << 16;
  rt::serving::Server server(plan, opt);

  rt::Rng rng(12);
  const rt::Tensor x = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  constexpr int kRequestsPerClient = 64;

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        std::vector<std::future<rt::Tensor>> inflight;
        inflight.reserve(kRequestsPerClient);
        for (int r = 0; r < kRequestsPerClient; ++r) {
          inflight.push_back(server.submit(rt::Tensor(x)));
        }
        for (auto& f : inflight) benchmark::DoNotOptimize(f.get());
      });
    }
    for (std::thread& t : threads) t.join();
  }

  const rt::serving::ServerStats st = server.stats();
  if (st.batches > 0) {
    state.counters["rows_per_batch"] =
        static_cast<double>(st.batched_rows) / static_cast<double>(st.batches);
  }
  state.SetItemsProcessed(state.iterations() * clients * kRequestsPerClient);
}
BENCHMARK(BM_ServerThroughputClients)
    ->Args({1, 0, 1})  // single client, per-request baseline
    ->Args({1, 1, 1})  // single client, micro-batching
    ->Args({4, 1, 1})  // 4 clients sharing one shard
    ->Args({4, 1, 2})  // 4 clients over a 2-shard fleet
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
