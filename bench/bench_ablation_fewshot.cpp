// Ablation: downstream data budget (the paper's motivating regime).
//
// Transfer learning matters most when downstream data is scarce (Sec. I).
// Sweeps the downstream train-set size for robust vs natural OMP tickets on
// a large-FID task under both adaptation protocols:
//   * linear evaluation (frozen features + probe) — the few-shot protocol:
//     feature quality is all that matters, so the robust margin shows up at
//     every budget, including the smallest;
//   * whole-model finetuning — below a data floor neither ticket trains at
//     all (both sit at chance); the robust margin opens as soon as the
//     budget crosses the learning threshold and peaks mid-range.
#include "bench_common.hpp"
#include "transfer/fewshot.hpp"

int main() {
  rtb::banner("Ablation — few-shot transfer (R18, OMP s=0.9, cifar10)",
              "linear eval: robust wins at every budget; finetune: both at "
              "chance below a data floor, then the robust margin opens");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  rt::Table table(
      {"protocol", "train_size", "robust_acc", "natural_acc", "margin"});
  table.set_precision(2);

  auto robust = lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, 0.9f);
  auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural, 0.9f);

  for (bool linear : {true, false}) {
    rt::FewShotConfig cfg;
    cfg.train_sizes = prof.quick() ? std::vector<int>{25, 100, 400}
                                   : std::vector<int>{25, 50, 100, 200, 400,
                                                      640};
    cfg.test_size = prof.down_test;
    cfg.finetune = rtb::finetune_config();
    cfg.linear = linear;
    cfg.linear_eval = rtb::linear_config();

    rt::Rng rng_a(505), rng_b(505);
    const auto robust_points =
        rt::fewshot_sweep(*robust, "cifar10", cfg, rng_a);
    const auto natural_points =
        rt::fewshot_sweep(*natural, "cifar10", cfg, rng_b);

    const char* protocol = linear ? "linear" : "finetune";
    for (std::size_t i = 0; i < robust_points.size(); ++i) {
      const double r = 100.0 * robust_points[i].accuracy;
      const double n = 100.0 * natural_points[i].accuracy;
      table.add_row({std::string(protocol),
                     static_cast<long long>(robust_points[i].train_size), r,
                     n, r - n});
      std::printf("  %-8s n=%-4d robust %.2f natural %.2f margin %+.2f\n",
                  protocol, robust_points[i].train_size, r, n, r - n);
    }
  }
  rtb::emit(table, "ablation_fewshot");
  return 0;
}
