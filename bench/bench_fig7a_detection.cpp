// Fig. 7(a): object-detection transfer. Robust vs natural OMP tickets from
// MicroResNet50 are reused as detection backbones (anchor-free stride-2
// head) on the synthetic detection task, across sparsities.
//
// Paper shape to reproduce (same as the segmentation panel): robust tickets
// reach consistently higher mAP, with the clearest margins at mild
// sparsity — the robustness prior transfers to localization tasks, not just
// classification.
#include "bench_common.hpp"
#include "transfer/det_transfer.hpp"

int main() {
  rtb::banner("Fig. 7(a) — detection transfer (R50, OMP tickets)",
              "robust tickets reach higher mAP@0.5, biggest margin at mild "
              "sparsity");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  const int train_n = prof.quick() ? 256 : 512;
  const int test_n = prof.quick() ? 96 : 192;
  // Moderate shift: the detection head must relearn localization anyway, so
  // the transfer difficulty lives in the backbone features, not the data.
  const rt::DetDataset train =
      rt::generate_detection_dataset(train_n, 0.3f, 4242);
  const rt::DetDataset test =
      rt::generate_detection_dataset(test_n, 0.3f, 4243);

  rt::DetTransferConfig cfg;
  cfg.epochs = prof.quick() ? 24 : 36;
  cfg.score_threshold = 0.2f;
  // Pretrained backbones need a gentle finetuning rate here: the detection
  // loss surface is much sharper than classification CE, and the default
  // (from-scratch) rate diverges on the deep bottleneck net.
  cfg.sgd.lr = 0.002f;

  rt::Table table({"sparsity", "robust_map", "natural_map", "margin"});
  table.set_precision(3);
  const std::vector<float> grid =
      prof.quick() ? std::vector<float>{0.2f, 0.5f, 0.8f}
                   : std::vector<float>{0.1f, 0.2f, 0.35f, 0.5f, 0.65f,
                                        0.8f, 0.9f};
  for (float sparsity : grid) {
    double maps[2] = {0.0, 0.0};
    const rt::PretrainScheme schemes[2] = {rt::PretrainScheme::kAdversarial,
                                           rt::PretrainScheme::kNatural};
    for (int i = 0; i < 2; ++i) {
      rt::Rng rng(777);
      auto ticket = lab.omp_ticket("r50", schemes[i], sparsity);
      maps[i] = rt::detection_transfer(std::move(ticket), train, test, cfg,
                                       rng);
    }
    table.add_row({static_cast<double>(sparsity), maps[0], maps[1],
                   maps[0] - maps[1]});
    std::printf("  s=%.2f robust %.3f natural %.3f margin %+.3f\n", sparsity,
                maps[0], maps[1], maps[0] - maps[1]);
  }
  rtb::emit(table, "fig7a_detection");
  return 0;
}
