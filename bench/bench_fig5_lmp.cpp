// Fig. 5: LMP (learnable mask pruning) robust vs natural tickets.
// Model weights stay frozen at the pretrained values; only a per-task mask
// (and the new classification head) is learned on the downstream task.
//
// Paper shape to reproduce: robust tickets drawn by LMP consistently beat
// natural ones — robust pretrained models contain better task-specific
// subnetworks even without any weight finetuning.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 5 — LMP tickets (frozen weights, learned masks)",
              "robust > natural at every sparsity");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  rt::Table table({"model", "task", "sparsity", "natural_acc", "robust_acc",
                   "robust_gain"});

  // Quick profile: two representative panels (r18/C10, r50/C100).
  std::vector<std::pair<std::string, std::string>> panels;
  if (prof.quick()) {
    panels = {{"r18", "cifar10"}, {"r50", "cifar100"}};
  } else {
    panels = {{"r18", "cifar10"}, {"r18", "cifar100"},
              {"r50", "cifar10"}, {"r50", "cifar100"}};
  }
  for (const auto& [arch, task_name] : panels) {
    {
      const rt::TaskData task =
          lab.downstream(task_name, prof.down_train, prof.down_test);
      for (float sparsity : prof.lmp_grid) {
        rt::LmpConfig lmp;
        lmp.sparsity = sparsity;
        lmp.epochs = prof.lmp_epochs;

        // lmp_ticket trains mask+head on the downstream task; accuracy is
        // evaluated directly (no further finetuning, per the scheme).
        auto natural =
            lab.lmp_ticket(arch, rt::PretrainScheme::kNatural, task.train, lmp);
        const double nat = rt::evaluate_accuracy(*natural, task.test);
        auto robust = lab.lmp_ticket(arch, rt::PretrainScheme::kAdversarial,
                                     task.train, lmp);
        const double rob = rt::evaluate_accuracy(*robust, task.test);
        table.add_row({arch, task_name, static_cast<double>(sparsity),
                       100.0 * nat, 100.0 * rob, 100.0 * (rob - nat)});
        std::printf("  %s/%s s=%.2f  natural %.2f  robust %.2f\n",
                    arch.c_str(), task_name.c_str(), sparsity, 100.0 * nat,
                    100.0 * rob);
      }
    }
  }
  table.set_precision(2);
  rtb::emit(table, "fig5_lmp");
  return 0;
}
