// Fig. 7: segmentation transfer. OMP robust vs natural tickets from
// MicroResNet50 are reused as backbones of an FCN head and finetuned on the
// synthetic dense-prediction task (the PASCAL-VOC stand-in); mIoU reported.
//
// Paper shape to reproduce: robust tickets achieve consistently higher mIoU,
// especially under mild sparsity — robustness priors transfer beyond
// classification.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 7 — segmentation transfer (R50, OMP)",
              "robust mIoU > natural mIoU, biggest margins at mild sparsity");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  const int train_n = prof.name == "full" ? 512 : 256;
  const int test_n = prof.name == "full" ? 256 : 160;
  const float seg_shift = 0.6f;
  const rt::SegDataset train =
      rt::generate_segmentation_dataset(train_n, seg_shift, 4242);
  const rt::SegDataset test =
      rt::generate_segmentation_dataset(test_n, seg_shift, 2424);

  rt::SegTransferConfig seg;
  seg.epochs = prof.name == "full" ? 12 : 7;

  rt::Table table({"sparsity", "natural_miou", "robust_miou", "robust_gain"});
  for (float sparsity : prof.omp_grid) {
    rt::Rng rng(7117);
    auto natural = lab.omp_ticket("r50", rt::PretrainScheme::kNatural, sparsity);
    const double nat =
        rt::segmentation_transfer(std::move(natural), train, test, seg, rng);
    rt::Rng rng2(7117);
    auto robust =
        lab.omp_ticket("r50", rt::PretrainScheme::kAdversarial, sparsity);
    const double rob =
        rt::segmentation_transfer(std::move(robust), train, test, seg, rng2);
    table.add_row({static_cast<double>(sparsity), nat, rob, rob - nat});
    std::printf("  s=%.2f  natural mIoU %.4f  robust mIoU %.4f\n", sparsity,
                nat, rob);
  }
  table.set_precision(4);
  rtb::emit(table, "fig7_segmentation");
  return 0;
}
