// Fig. 4: A-IMP robust tickets vs vanilla-IMP natural tickets, run on the
// upstream (US) or downstream (DS) task, with whole-model finetuning.
// One iterative run per variant yields tickets at every intermediate
// sparsity via imp_prune_trajectory.
//
// Paper shape to reproduce: (1) robust tickets generally ahead; (2) US robust
// best at mild sparsity, DS robust catches up / wins at high sparsity where
// task-specific sparsity patterns matter; (3) on the harder task (C100, R50)
// natural tickets can win at extreme sparsity (> 0.95).
#include "bench_common.hpp"

namespace {

struct Variant {
  const char* label;
  rt::PretrainScheme scheme;
  bool adversarial;  // inner IMP objective
  bool downstream;   // IMP data: downstream train split vs source
};

}  // namespace

int main() {
  rtb::banner("Fig. 4 — A-IMP (US/DS) vs IMP (US/DS)",
              "robust ahead overall; DS robust best at high sparsity");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  const Variant variants[] = {
      {"US-robust", rt::PretrainScheme::kAdversarial, true, false},
      {"US-natural", rt::PretrainScheme::kNatural, false, false},
      {"DS-robust", rt::PretrainScheme::kAdversarial, true, true},
      {"DS-natural", rt::PretrainScheme::kNatural, false, true},
  };

  rt::Table table(
      {"model", "task", "variant", "sparsity", "finetune_acc"});

  const std::vector<std::string> archs =
      prof.quick() ? std::vector<std::string>{"r18"}
                   : std::vector<std::string>{"r18", "r50"};
  for (const std::string& arch : archs) {
    for (const std::string task_name : {"cifar10", "cifar100"}) {
      const rt::TaskData task =
          lab.downstream(task_name, prof.down_train, prof.down_test);
      for (const Variant& v : variants) {
        rt::ImpConfig imp;
        imp.target_sparsity = prof.imp_target;
        imp.rate_per_round = prof.imp_rate;
        imp.epochs_per_round = prof.imp_epochs_per_round;
        imp.adversarial = v.adversarial;
        imp.attack = lab.pretrain_attack();

        auto model = lab.dense_model(arch, v.scheme);
        rt::Rng imp_rng(555);
        const rt::Dataset& imp_data =
            v.downstream ? task.train : lab.source().train;
        const auto trajectory =
            rt::imp_prune_trajectory(*model, imp_data, imp, imp_rng);

        // Evaluate a subset of rounds (all in full profile, ~3 in quick).
        const std::size_t stride =
            prof.name == "full" ? 1 : std::max<std::size_t>(
                1, trajectory.size() / 3);
        for (std::size_t i = 0; i < trajectory.size(); ++i) {
          const bool last = i + 1 == trajectory.size();
          if (i % stride != 0 && !last) continue;
          auto ticket = lab.dense_model(arch, v.scheme);
          trajectory[i].masks.apply(*ticket);
          rt::Rng rng(99);
          const double acc = rt::finetune_whole_model(
              *ticket, task, rtb::finetune_config(), rng);
          table.add_row({arch, task_name, std::string(v.label),
                         static_cast<double>(trajectory[i].sparsity),
                         100.0 * acc});
          std::printf("  %s/%s %-10s s=%.3f  acc %.2f\n", arch.c_str(),
                      task_name.c_str(), v.label, trajectory[i].sparsity,
                      100.0 * acc);
        }
      }
    }
  }
  table.set_precision(2);
  rtb::emit(table, "fig4_aimp");
  return 0;
}
