// Fig. 1: whole-model finetuning accuracy of OMP robust vs natural tickets,
// MicroResNet18/50 on the CIFAR-10/100 analogues, across sparsity ratios
// (including the extreme 0.90-0.99 zoom region).
//
// Paper shape to reproduce: robust tickets consistently above natural ones
// (e.g. +1.95 pts at R50/C100 s=0.7; +2.38 pts at R18/C100 s=0.99), with the
// advantage shrinking at extreme sparsity.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 1 — OMP tickets, whole-model finetuning",
              "robust > natural at all sparsities; gap shrinks at 0.99");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  rt::Table table({"model", "task", "sparsity", "natural_acc", "robust_acc",
                   "robust_gain"});
  rt::Table summary({"model", "task", "mean_gain_pts"});

  for (const std::string arch : {"r18", "r50"}) {
    for (const std::string task_name : {"cifar10", "cifar100"}) {
      const rt::TaskData task =
          lab.downstream(task_name, prof.down_train, prof.down_test);
      double gain_sum = 0.0;
      for (float sparsity : prof.omp_grid) {
        rt::Rng rng(1234);
        auto natural =
            lab.omp_ticket(arch, rt::PretrainScheme::kNatural, sparsity);
        const double nat =
            rt::finetune_whole_model(*natural, task, rtb::finetune_config(), rng);
        rt::Rng rng2(1234);
        auto robust =
            lab.omp_ticket(arch, rt::PretrainScheme::kAdversarial, sparsity);
        const double rob = rt::finetune_whole_model(*robust, task,
                                                    rtb::finetune_config(), rng2);
        table.add_row({arch, task_name, static_cast<double>(sparsity),
                       100.0 * nat, 100.0 * rob, 100.0 * (rob - nat)});
        gain_sum += 100.0 * (rob - nat);
        std::printf("  %s/%s s=%.2f  natural %.2f  robust %.2f\n",
                    arch.c_str(), task_name.c_str(), sparsity, 100.0 * nat,
                    100.0 * rob);
      }
      summary.add_row({arch, task_name,
                       gain_sum / static_cast<double>(prof.omp_grid.size())});
    }
  }
  table.set_precision(2);
  summary.set_precision(2);
  rtb::emit(table, "fig1_omp_finetune");
  std::printf("\nMean robust-ticket gain per panel:\n");
  rtb::emit(summary, "fig1_omp_finetune_summary");
  return 0;
}
