// Socket front-end micro-benchmarks (google-benchmark): what the wire adds
// on top of the in-process serving layer, measured on the paper's deployment
// artifact — a 90%-sparse MicroResNet-18 ticket served over loopback TCP.
//
//   BM_NetLatencyP50P99             closed-loop single client, one blocking
//                                   1-row predict at a time over a loopback
//                                   socket: framing + syscalls + the full
//                                   registry/serving dispatch path. Client-
//                                   side round-trip quantiles (p50_us /
//                                   p99_us) — the number a remote caller
//                                   actually experiences.
//   BM_NetThroughputConnections/    C long-lived connections, each driving a
//     conns/pipelined               burst of 1-row requests. pipelined=0
//                                   waits out every round trip (the blocking
//                                   baseline); pipelined=1 streams the burst
//                                   and drains replies in arrival order, so
//                                   the wire, the coalescer, and the shards
//                                   overlap. The 32-connection pipelined
//                                   row vs the 1-connection blocking row is
//                                   the front-end's concurrency headroom.
//   BM_NetInProcessBaseline         the same burst submitted straight to
//                                   serving::Server futures — no sockets.
//                                   The gap to the net rows is the total
//                                   cost of the wire.
//
// bench_net registers into the bench_serving binary too (like bench_cache),
// so scripts/check.sh --bench-json lands all of it in BENCH_serving.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "models/resnet.hpp"
#include "net/net.hpp"
#include "prune/baselines.hpp"
#include "registry/registry.hpp"
#include "serving/serving.hpp"
#include "tensor/tensor.hpp"

namespace {

constexpr int kRequestsPerConn = 32;

/// The deployment artifact every net bench serves: a 90%-per-layer-sparse
/// r18 whose convs pack as CSR (compiled at the default 16x16 geometry).
std::unique_ptr<rt::ResNet> net_sparse_r18(std::uint64_t seed) {
  rt::Rng rng(seed);
  auto model = rt::make_micro_resnet18(10, rng);
  rt::layerwise_magnitude_prune(*model, 0.9f, rt::Granularity::kElement);
  model->set_training(false);
  return model;
}

/// One fleet config for every bench in this file: the production-shaped
/// coalescer (a real batching window, like ServerOptions' defaults). A
/// closed-loop blocking client pays the window on every round trip and
/// never fills a batch; pipelined connections keep the window full — that
/// asymmetry is precisely what the throughput rows quantify.
rt::serving::ServerOptions net_fleet_options() {
  rt::serving::ServerOptions opt;
  opt.max_batch = 64;
  opt.max_delay_ms = 0.2;
  opt.queue_capacity_rows = 1 << 16;
  return opt;
}

/// Registry with one published r18 and a warmed wire endpoint: the first
/// predict compiles the plan and spins up the fleet, which must not be
/// inside anyone's timed loop.
struct NetBenchHarness {
  rt::registry::Registry registry;
  std::unique_ptr<rt::net::InferenceServer> server;
  rt::Tensor row{std::vector<std::int64_t>{1}};

  NetBenchHarness() : registry(hermetic()) {
    auto model = net_sparse_r18(9);
    registry.publish("r18", *model);
    rt::net::NetOptions opt;
    opt.serving = net_fleet_options();
    server = std::make_unique<rt::net::InferenceServer>(registry, opt);
    rt::Rng rng(21);
    row = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
    rt::net::Client warm("127.0.0.1", server->port());
    warm.predict("r18@1", row);
  }

 private:
  static rt::registry::RegistryOptions hermetic() {
    rt::registry::RegistryOptions opt;
    opt.cache_root = "";  // never touches the disk cache
    return opt;
  }
};

void BM_NetLatencyP50P99(benchmark::State& state) {
  NetBenchHarness harness;
  rt::net::Client client("127.0.0.1", harness.server->port());

  std::vector<double> samples_us;
  samples_us.reserve(4096);
  for (auto _ : state) {
    const auto begin = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(client.predict("r18@1", harness.row));
    const auto end = std::chrono::steady_clock::now();
    samples_us.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count());
  }
  if (!samples_us.empty()) {
    auto quantile = [&](double q) {
      const auto rank = static_cast<std::ptrdiff_t>(
          q * static_cast<double>(samples_us.size() - 1));
      std::nth_element(samples_us.begin(), samples_us.begin() + rank,
                       samples_us.end());
      return samples_us[static_cast<std::size_t>(rank)];
    };
    state.counters["p50_us"] = quantile(0.50);
    state.counters["p99_us"] = quantile(0.99);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetLatencyP50P99)->UseRealTime();

void BM_NetThroughputConnections(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const bool pipelined = state.range(1) == 1;
  NetBenchHarness harness;

  // Long-lived connections, opened once: the bench measures steady-state
  // request flow, not handshakes.
  std::vector<std::unique_ptr<rt::net::Client>> clients;
  clients.reserve(static_cast<std::size_t>(conns));
  for (int c = 0; c < conns; ++c) {
    clients.push_back(std::make_unique<rt::net::Client>(
        "127.0.0.1", harness.server->port()));
  }

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        rt::net::Client& client = *clients[static_cast<std::size_t>(c)];
        if (pipelined) {
          std::vector<rt::net::Client::Reply> inflight;
          inflight.reserve(kRequestsPerConn);
          for (int r = 0; r < kRequestsPerConn; ++r) {
            inflight.push_back(client.submit("r18@1", harness.row));
          }
          for (auto& reply : inflight) benchmark::DoNotOptimize(reply.get());
        } else {
          for (int r = 0; r < kRequestsPerConn; ++r) {
            benchmark::DoNotOptimize(client.predict("r18@1", harness.row));
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  state.SetItemsProcessed(state.iterations() * conns * kRequestsPerConn);
}
BENCHMARK(BM_NetThroughputConnections)
    ->Args({1, 0})   // single connection, blocking round trips
    ->Args({1, 1})   // single connection, pipelined
    ->Args({8, 1})   // 8 connections, pipelined
    ->Args({32, 1})  // 32 connections, pipelined
    ->UseRealTime();

void BM_NetInProcessBaseline(benchmark::State& state) {
  // The no-socket comparator: identical fleet options, identical burst
  // shape, futures drained directly. Everything the net rows pay on top of
  // this is the wire.
  auto model = net_sparse_r18(9);
  auto plan = std::make_shared<const rt::CompiledTicket>(
      rt::Engine::compile(*model));
  rt::serving::Server server(plan, net_fleet_options());

  rt::Rng rng(21);
  const rt::Tensor row = rt::Tensor::uniform({1, 3, 16, 16}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    std::vector<std::future<rt::Tensor>> inflight;
    inflight.reserve(kRequestsPerConn);
    for (int r = 0; r < kRequestsPerConn; ++r) {
      inflight.push_back(server.submit(rt::Tensor(row)));
    }
    for (auto& f : inflight) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * kRequestsPerConn);
}
BENCHMARK(BM_NetInProcessBaseline)->UseRealTime();

}  // namespace
