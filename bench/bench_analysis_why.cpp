// "Why do robust tickets transfer better?" (Sec. III-F, sharpened).
//
// The paper's Tab. II argues robust tickets win where the source->target
// domain gap (FID) is large. This bench quantifies the mechanism four ways:
//   1. Spearman rank correlation between per-task FID and the robust-minus-
//      natural linear-eval margin (paper shape: positive, i.e. the margin
//      grows with the domain gap);
//   2. mask divergence: robust and natural OMP masks overlap far above the
//      random-null IoU but well below 1 — the prior changes WHICH weights
//      survive, not just their values;
//   3. CKA between robust and natural representations, per stage — early
//      stages stay similar, late (task-specific) stages diverge;
//   4. frozen-feature quality on a large-gap task: Fisher separation,
//      effective rank, and kNN accuracy, robust vs natural.
#include "analysis/cka.hpp"
#include "analysis/correlation.hpp"
#include "analysis/features.hpp"
#include "analysis/landscape.hpp"
#include "analysis/mask_stats.hpp"
#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "prune/omp.hpp"

int main() {
  rtb::banner("Analysis — why robust tickets transfer better (Sec. III-F)",
              "margin grows with FID (Spearman > 0); masks diverge from "
              "natural ones; late-stage CKA drops; robust features separate "
              "classes better on large-gap tasks");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();
  const float sparsity = 0.9f;

  // ---- 1. FID vs linear-eval margin --------------------------------------
  const std::vector<std::string> tasks =
      prof.quick()
          ? std::vector<std::string>{"cifar10", "aircraft", "pets",
                                     "food", "sun397", "caltech256"}
          : std::vector<std::string>{"cifar10", "aircraft", "cifar100",
                                     "pets", "flowers", "cars", "food",
                                     "dtd", "birdsnap", "sun397",
                                     "caltech101", "caltech256"};
  rt::FidProbe probe;
  rt::Table margin_table({"task", "fid", "robust_acc", "natural_acc",
                          "margin"});
  margin_table.set_precision(2);
  std::vector<double> fids, margins;
  for (const std::string& name : tasks) {
    const rt::TaskData task =
        lab.downstream(name, prof.down_train, prof.down_test);
    const double fid =
        rt::fid_between(lab.source().train.images, task.train.images, probe);
    double acc[2] = {0.0, 0.0};
    const rt::PretrainScheme schemes[2] = {
        rt::PretrainScheme::kAdversarial, rt::PretrainScheme::kNatural};
    for (int i = 0; i < 2; ++i) {
      rt::Rng rng(1234);
      auto ticket = lab.omp_ticket("r18", schemes[i], sparsity);
      acc[i] =
          100.0 * rt::linear_eval(*ticket, task, rtb::linear_config(), rng);
    }
    const double margin = acc[0] - acc[1];
    fids.push_back(fid);
    margins.push_back(margin);
    margin_table.add_row({name, fid, acc[0], acc[1], margin});
    std::printf("  %-12s fid %7.2f  robust %.2f natural %.2f margin %+.2f\n",
                name.c_str(), fid, acc[0], acc[1], margin);
  }
  rtb::emit(margin_table, "analysis_fid_margin");
  const double spearman = rt::spearman_correlation(fids, margins);
  const double pearson = rt::pearson_correlation(fids, margins);
  std::printf("\nSpearman(FID, margin) = %+.3f   Pearson = %+.3f  "
              "(paper shape: positive)\n\n",
              spearman, pearson);

  // ---- 2. Mask divergence -------------------------------------------------
  rt::Table mask_table(
      {"granularity", "sparsity", "iou", "random_null_iou", "excess"});
  mask_table.set_precision(3);
  for (rt::Granularity g :
       {rt::Granularity::kElement, rt::Granularity::kChannel}) {
    for (float s : {0.5f, 0.9f}) {
      auto robust =
          lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, s, g);
      auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural, s, g);
      const rt::MaskOverlap o =
          rt::mask_overlap(rt::MaskSet::capture(*robust),
                           rt::MaskSet::capture(*natural));
      mask_table.add_row({std::string(rt::granularity_name(g)),
                          static_cast<double>(s), o.iou, o.expected_iou,
                          o.iou - o.expected_iou});
    }
  }
  rtb::emit(mask_table, "analysis_mask_overlap");

  // ---- 3. CKA stage profile ----------------------------------------------
  auto dense_robust = lab.dense_model("r18", rt::PretrainScheme::kAdversarial);
  auto dense_natural = lab.dense_model("r18", rt::PretrainScheme::kNatural);
  const auto profile = rt::cka_stage_profile(
      *dense_robust, *dense_natural, lab.source().test.images);
  rt::Table cka_table({"stage", "cka_robust_vs_natural"});
  cka_table.set_precision(3);
  for (std::size_t s = 0; s < profile.size(); ++s) {
    const std::string label =
        s + 1 == profile.size() ? "features" : "stage" + std::to_string(s);
    cka_table.add_row({label, profile[s]});
  }
  rtb::emit(cka_table, "analysis_cka_profile");

  // ---- 4. Frozen-feature quality on a large-gap task ---------------------
  const rt::TaskData gap_task =
      lab.downstream("cifar10", prof.down_train, prof.down_test);
  rt::Table feat_table({"pretrain", "fisher", "eff_rank", "knn_acc",
                        "sharpness"});
  feat_table.set_precision(3);
  for (rt::PretrainScheme scheme :
       {rt::PretrainScheme::kAdversarial, rt::PretrainScheme::kNatural}) {
    auto ticket = lab.omp_ticket("r18", scheme, sparsity);
    const rt::Tensor train_f =
        rt::extract_features(*ticket, gap_task.train.images);
    const rt::Tensor test_f =
        rt::extract_features(*ticket, gap_task.test.images);
    const double fisher =
        rt::fisher_separation(train_f, gap_task.train.labels);
    const double rank = rt::effective_rank(train_f);
    const float knn = rt::knn_probe_accuracy(
        train_f, gap_task.train.labels, test_f, gap_task.test.labels, 5);
    rt::SharpnessConfig scfg;
    scfg.directions = prof.quick() ? 4 : 10;
    const rt::SharpnessReport sharp =
        rt::loss_sharpness(*ticket, lab.source().test, scfg);
    feat_table.add_row({std::string(rt::scheme_name(scheme)), fisher, rank,
                        static_cast<double>(100.0f * knn),
                        sharp.mean_increase});
  }
  rtb::emit(feat_table, "analysis_feature_quality");
  return 0;
}
