// Fig. 2: linear-evaluation accuracy of OMP robust vs natural tickets.
// The drawn ticket is frozen as a feature extractor and only a new linear
// classifier is trained.
//
// Paper shape to reproduce: robust tickets win aggressively under linear
// evaluation (>= 11.75 pts on R50/C100 up to sparsity 0.92) — a larger
// margin than under whole-model finetuning, because frozen features must
// absorb the domain shift alone.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 2 — OMP tickets, linear evaluation",
              "robust >> natural; margins larger than Fig. 1");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  rt::Table table({"model", "task", "sparsity", "natural_acc", "robust_acc",
                   "robust_gain"});

  for (const std::string arch : {"r18", "r50"}) {
    for (const std::string task_name : {"cifar10", "cifar100"}) {
      const rt::TaskData task =
          lab.downstream(task_name, prof.down_train, prof.down_test);
      for (float sparsity : prof.omp_grid) {
        rt::Rng rng(777);
        auto natural =
            lab.omp_ticket(arch, rt::PretrainScheme::kNatural, sparsity);
        const double nat =
            rt::linear_eval(*natural, task, rtb::linear_config(), rng);
        rt::Rng rng2(777);
        auto robust =
            lab.omp_ticket(arch, rt::PretrainScheme::kAdversarial, sparsity);
        const double rob =
            rt::linear_eval(*robust, task, rtb::linear_config(), rng2);
        table.add_row({arch, task_name, static_cast<double>(sparsity),
                       100.0 * nat, 100.0 * rob, 100.0 * (rob - nat)});
        std::printf("  %s/%s s=%.2f  natural %.2f  robust %.2f\n",
                    arch.c_str(), task_name.c_str(), sparsity, 100.0 * nat,
                    100.0 * rob);
      }
    }
  }
  table.set_precision(2);
  rtb::emit(table, "fig2_omp_linear");
  return 0;
}
