// Fig. 9 + Tab. II: when and why do robust tickets transfer better?
// Linear evaluation of OMP robust vs natural MicroResNet18 tickets on all 12
// suite tasks, the measured FID of each task against the source, and the
// per-task winner.
//
// Paper shape to reproduce: robust tickets win on large-FID tasks (big
// domain gap), natural tickets match or win on small-FID tasks; the paper
// reports 7 robust / 3 match / 2 natural across 12 tasks, and winner labels
// ordered by FID. Our measured FID must also be monotone in the task's
// shift knob for the analysis to make sense.
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 9 / Tab. II — 12-task linear eval vs FID",
              "robust wins at high FID; match/natural at low FID");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  // Sparsity representative of the "high sparsity" regime of Fig. 9.
  const float sparsity = 0.9f;
  rt::FidProbe probe;

  rt::Table table({"task", "paper_fid", "measured_fid", "natural_acc",
                   "robust_acc", "winner", "paper_winner"});

  int robust_wins = 0, natural_wins = 0, matches = 0, agree = 0;
  for (const rt::TaskEntry& entry : rt::vtab_suite()) {
    const rt::TaskData task =
        lab.downstream(entry.name, prof.down_train, prof.down_test);
    const double fid =
        rt::fid_between(lab.source().train.images, task.train.images, probe);

    rt::Rng rng(2024);
    auto natural = lab.omp_ticket("r18", rt::PretrainScheme::kNatural, sparsity);
    const double nat = rt::linear_eval(*natural, task, rtb::linear_config(), rng);
    rt::Rng rng2(2024);
    auto robust =
        lab.omp_ticket("r18", rt::PretrainScheme::kAdversarial, sparsity);
    const double rob = rt::linear_eval(*robust, task, rtb::linear_config(), rng2);

    const std::string winner = rt::winner_label(rob, nat);
    if (winner == "Robust") ++robust_wins;
    else if (winner == "Natural") ++natural_wins;
    else ++matches;
    if (winner == entry.paper_winner) ++agree;

    table.add_row({entry.name, entry.paper_fid, fid, 100.0 * nat, 100.0 * rob,
                   winner, entry.paper_winner});
    std::printf("  %-10s fid %7.2f  natural %.2f  robust %.2f  -> %s\n",
                entry.name.c_str(), fid, 100.0 * nat, 100.0 * rob,
                winner.c_str());
  }
  table.set_precision(2);
  rtb::emit(table, "fig9_tab2_vtab");
  std::printf(
      "\nWinners: %d robust / %d match / %d natural (paper: 7/3/2); "
      "label agreement with Tab. II: %d/12\n",
      robust_wins, matches, natural_wins, agree);
  return 0;
}
