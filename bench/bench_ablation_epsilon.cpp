// Ablation: "PROPERLY induced adversarial robustness" (Sec. II-A).
// Sweeps the PGD pretraining budget eps and measures the downstream transfer
// accuracy of the resulting OMP tickets. The paper picks a per-task optimal
// perturbation strength following [19]; this ablation shows why: too little
// robustness leaves the brittle shortcut intact, too much destroys clean
// features. Expect an inverted U with an interior optimum.
//
// Also ablates the design choice called out in DESIGN.md: the brittle-cue
// amplitude (0.06) sits below the default eps (0.08), so eps >= 0.08 can
// fully invert the shortcut while eps = 0.02 cannot.
#include "bench_common.hpp"

int main() {
  rtb::banner("Ablation — robustness prior strength (PGD eps sweep)",
              "interior optimum: moderate eps transfers best");
  const auto& prof = rtb::profile();

  const float sparsity = 0.9f;
  const std::vector<float> epsilons =
      prof.quick() ? std::vector<float>{0.0f, 0.04f, 0.08f, 0.16f}
                   : std::vector<float>{0.0f, 0.02f, 0.04f, 0.08f, 0.16f};

  rt::Table table({"eps", "source_acc", "finetune_acc", "linear_acc"});
  for (float eps : epsilons) {
    // A lab per eps: different pretraining budget => different checkpoint.
    rt::RobustTicketLab::Options opt;
    opt.adv_epsilon = eps;
    if (prof.quick()) opt.pretrain_epochs = 10;
    rt::RobustTicketLab lab(opt);
    const auto scheme = eps == 0.0f ? rt::PretrainScheme::kNatural
                                    : rt::PretrainScheme::kAdversarial;
    const rt::TaskData task =
        lab.downstream("cifar10", prof.down_train, prof.down_test);

    auto dense = lab.dense_model("r18", scheme);
    const double src_acc = rt::evaluate_accuracy(*dense, lab.source().test);

    rt::Rng rng(515);
    auto ticket_ft = lab.omp_ticket("r18", scheme, sparsity);
    const double ft =
        rt::finetune_whole_model(*ticket_ft, task, rtb::finetune_config(), rng);
    rt::Rng rng2(515);
    auto ticket_lin = lab.omp_ticket("r18", scheme, sparsity);
    const double lin =
        rt::linear_eval(*ticket_lin, task, rtb::linear_config(), rng2);

    table.add_row({static_cast<double>(eps), 100.0 * src_acc, 100.0 * ft,
                   100.0 * lin});
    std::printf("  eps=%.2f  source %.2f  finetune %.2f  linear %.2f\n", eps,
                100.0 * src_acc, 100.0 * ft, 100.0 * lin);
  }
  table.set_precision(2);
  rtb::emit(table, "ablation_epsilon");
  return 0;
}
