#pragma once
// Shared harness for the figure/table reproduction benches.
//
// Every bench binary prints the paper expectation, the measured table, and
// writes a CSV copy to ./bench_out/. Two profiles control cost:
//   RT_BENCH_PROFILE=quick  (default) — reduced grids/epochs, minutes total;
//   RT_BENCH_PROFILE=full   — denser grids, closer to the paper protocol.
// Pretrained and IMP/LMP-retrained checkpoints live in the content-addressed
// store under RT_CACHE_DIR (default /tmp/rticket_cache), shared across all
// bench binaries and the integration test suites.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/robust_tickets.hpp"

namespace rtb {

struct Profile {
  std::string name = "quick";
  int down_train = 224;
  int down_test = 320;
  int finetune_epochs = 4;
  int linear_epochs = 30;
  std::vector<float> omp_grid{0.2f, 0.9f, 0.99f};
  std::vector<float> structured_grid{0.5f};
  float imp_rate = 0.3f;
  int imp_epochs_per_round = 1;
  float imp_target = 0.9f;
  int lmp_epochs = 6;
  std::vector<float> lmp_grid{0.5f, 0.9f};

  bool quick() const { return name == "quick"; }
};

inline const Profile& profile() {
  static const Profile p = [] {
    Profile prof;
    const char* env = std::getenv("RT_BENCH_PROFILE");
    if (env != nullptr && std::string(env) == "full") {
      prof.name = "full";
      prof.down_train = 640;
      prof.down_test = 512;
      prof.finetune_epochs = 12;
      prof.linear_epochs = 60;
      prof.omp_grid = {0.2f, 0.36f, 0.5f, 0.59f, 0.7f, 0.79f,
                       0.9f, 0.95f, 0.99f};
      prof.structured_grid = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f, 0.7f, 0.8f};
      prof.imp_rate = 0.2f;
      prof.imp_epochs_per_round = 3;
      prof.imp_target = 0.97f;
      prof.lmp_epochs = 14;
      prof.lmp_grid = {0.2f, 0.4f, 0.6f, 0.8f, 0.9f};
    }
    return prof;
  }();
  return p;
}

/// One lab per process; identical options across benches maximize pretrain
/// cache reuse.
inline rt::RobustTicketLab& lab() {
  static rt::RobustTicketLab instance([] {
    rt::RobustTicketLab::Options opt;
    opt.verbose = true;
    return opt;
  }());
  return instance;
}

inline rt::FinetuneConfig finetune_config() {
  rt::FinetuneConfig cfg;
  cfg.epochs = profile().finetune_epochs;
  return cfg;
}

inline rt::LinearEvalConfig linear_config() {
  rt::LinearEvalConfig cfg;
  cfg.epochs = profile().linear_epochs;
  return cfg;
}

/// Prints the standard bench header.
inline void banner(const std::string& bench, const std::string& paper_claim) {
  std::printf("==========================================================\n");
  std::printf("%s   [profile: %s]\n", bench.c_str(), profile().name.c_str());
  std::printf("Paper expectation: %s\n", paper_claim.c_str());
  std::printf("==========================================================\n");
}

/// Prints the table and writes bench_out/<name>.csv.
inline void emit(const rt::Table& table, const std::string& name) {
  std::printf("%s", table.to_string().c_str());
  std::error_code ec;
  std::filesystem::create_directories("bench_out", ec);
  const std::string path = "bench_out/" + name + ".csv";
  if (table.save_csv(path)) {
    std::printf("[saved %s]\n", path.c_str());
  }
}

}  // namespace rtb
