// Kernel micro-benchmarks (google-benchmark): the compute primitives whose
// cost dominates the experiment harness. Useful for spotting performance
// regressions in the substrate rather than reproducing a paper figure.
#include <benchmark/benchmark.h>

#include "attack/attack.hpp"
#include "attack/trades.hpp"
#include "hw/shrink.hpp"
#include "linalg/gemm.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "prune/omp.hpp"
#include "tensor/tensor.hpp"

namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  rt::Rng rng(1);
  const rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Raw kernel throughput (items == FLOPs) for the shared hot path; the Arg is
// the square problem size. Sparse variants zero the given percentage of the
// weight operand, matching the masked-ticket regime the fast path targets.
void BM_GemmNN(benchmark::State& state) {
  const auto n = state.range(0);
  const float sparsity = static_cast<float>(state.range(1)) / 100.0f;
  rt::Rng rng(2);
  rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  rt::Tensor c({n, n});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (rng.uniform() < sparsity) a[i] = 0.0f;
  }
  for (auto _ : state) {
    rt::gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)
    ->Args({128, 0})
    ->Args({256, 0})
    ->Args({256, 90})
    ->Args({512, 0})
    ->Args({512, 90});

void BM_GemmNT(benchmark::State& state) {
  const auto n = state.range(0);
  const float sparsity = static_cast<float>(state.range(1)) / 100.0f;
  rt::Rng rng(3);
  const rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  rt::Tensor c({n, n});
  // Channel-style pruning: zero whole rows of B, the nt fast-path shape.
  const auto zero_rows = static_cast<std::int64_t>(
      sparsity * static_cast<float>(n));
  for (std::int64_t j = 0; j < zero_rows; ++j) {
    for (std::int64_t kk = 0; kk < n; ++kk) b[j * n + kk] = 0.0f;
  }
  for (auto _ : state) {
    rt::gemm_nt(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Args({256, 0})->Args({256, 70})->Args({512, 0});

void BM_ResNetForward(benchmark::State& state) {
  rt::Rng rng(2);
  auto model = state.range(0) == 18 ? rt::make_micro_resnet18(10, rng)
                                    : rt::make_micro_resnet50(10, rng);
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ResNetForward)->Arg(18)->Arg(50);

void BM_ResNetTrainStep(benchmark::State& state) {
  rt::Rng rng(3);
  auto model = state.range(0) == 18 ? rt::make_micro_resnet18(10, rng)
                                    : rt::make_micro_resnet50(10, rng);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    model->zero_grad();
    const rt::Tensor logits = model->forward(x);
    const rt::LossResult loss = rt::softmax_cross_entropy(logits, y);
    benchmark::DoNotOptimize(model->backward(loss.grad_logits));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ResNetTrainStep)->Arg(18)->Arg(50);

void BM_PgdAttack(benchmark::State& state) {
  rt::Rng rng(4);
  auto model = rt::make_micro_resnet18(10, rng);
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 10);
  rt::AttackConfig cfg;
  cfg.steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::pgd_attack(*model, x, y, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_PgdAttack)->Arg(1)->Arg(5)->Arg(10);

void BM_TradesStep(benchmark::State& state) {
  rt::Rng rng(5);
  auto model = rt::make_micro_resnet18(10, rng);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 10);
  rt::TradesConfig cfg;
  cfg.attack.steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    model->zero_grad();
    benchmark::DoNotOptimize(rt::trades_step(*model, x, y, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TradesStep)->Arg(1)->Arg(5);

void BM_OptimizerStep(benchmark::State& state) {
  rt::Rng rng(6);
  auto model = rt::make_micro_resnet50(10, rng);
  auto params = model->parameters();
  for (rt::Parameter* p : params) p->grad.fill_(0.01f);
  const bool adam = state.range(0) == 1;
  rt::Sgd sgd(params, {});
  rt::Adam adam_opt(params, {});
  for (auto _ : state) {
    if (adam) {
      adam_opt.step();
    } else {
      sgd.step();
    }
  }
  state.SetItemsProcessed(state.iterations() * model->num_parameters());
}
BENCHMARK(BM_OptimizerStep)->Arg(0)->Arg(1);  // 0 = SGD, 1 = Adam

void BM_ShrunkVsMaskedForward(benchmark::State& state) {
  // The shrink compiler's payoff measured at the kernel level: forward cost
  // of a 70%-channel-pruned r50, masked (range 0) vs physically shrunk (1).
  rt::Rng rng(7);
  auto model = rt::make_micro_resnet50(10, rng);
  rt::OmpConfig cfg;
  cfg.sparsity = 0.7f;
  cfg.granularity = rt::Granularity::kChannel;
  rt::omp_prune(*model, cfg);
  rt::neutralize_dead_internal_channels(*model);
  if (state.range(0) == 1) {
    rt::shrink_internal_channels(*model, rng);
  }
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ShrunkVsMaskedForward)->Arg(0)->Arg(1);

void BM_KlDivergence(benchmark::State& state) {
  rt::Rng rng(8);
  const auto n = state.range(0);
  const rt::Tensor a = rt::Tensor::randn({n, 10}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, 10}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::kl_divergence(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KlDivergence)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
