// Kernel micro-benchmarks (google-benchmark): the compute primitives whose
// cost dominates the experiment harness. Useful for spotting performance
// regressions in the substrate rather than reproducing a paper figure.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/scheduler.hpp"

#include "attack/attack.hpp"
#include "attack/trades.hpp"
#include "engine/engine.hpp"
#include "hw/shrink.hpp"
#include "linalg/conv.hpp"
#include "linalg/gemm.hpp"
#include "linalg/gemm_s8.hpp"
#include "models/resnet.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "prune/baselines.hpp"
#include "prune/omp.hpp"
#include "tensor/tensor.hpp"

namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = state.range(0);
  rt::Rng rng(1);
  const rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Raw kernel throughput (items == FLOPs) for the shared hot path; the Arg is
// the square problem size. Sparse variants zero the given percentage of the
// weight operand, matching the masked-ticket regime the fast path targets.
void BM_GemmNN(benchmark::State& state) {
  const auto n = state.range(0);
  const float sparsity = static_cast<float>(state.range(1)) / 100.0f;
  rt::Rng rng(2);
  rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  rt::Tensor c({n, n});
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (rng.uniform() < sparsity) a[i] = 0.0f;
  }
  for (auto _ : state) {
    rt::gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNN)
    ->Args({128, 0})
    ->Args({256, 0})
    ->Args({256, 90})
    ->Args({512, 0})
    ->Args({512, 90});

void BM_GemmNT(benchmark::State& state) {
  const auto n = state.range(0);
  const float sparsity = static_cast<float>(state.range(1)) / 100.0f;
  rt::Rng rng(3);
  const rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  rt::Tensor c({n, n});
  // Channel-style pruning: zero whole rows of B, the nt fast-path shape.
  const auto zero_rows = static_cast<std::int64_t>(
      sparsity * static_cast<float>(n));
  for (std::int64_t j = 0; j < zero_rows; ++j) {
    for (std::int64_t kk = 0; kk < n; ++kk) b[j * n + kk] = 0.0f;
  }
  for (auto _ : state) {
    rt::gemm_nt(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNT)->Args({256, 0})->Args({256, 70})->Args({512, 0});

// True int8 GEMM: packed s8 weights x u8 offset activations with int32
// accumulation and the fused requant+bias epilogue, i.e. exactly what a
// native int8 conv layer executes per tile. Items == integer MACs * 2 so
// items_per_second is directly comparable against BM_GemmNN at the same
// size; the ratio is the kernel-level int8 speedup (VNNI when the build
// targets it, the portable integer core otherwise).
void BM_GemmS8(benchmark::State& state) {
  const auto n = state.range(0);
  const float sparsity = static_cast<float>(state.range(1)) / 100.0f;
  rt::Rng rng(4);
  std::vector<std::int8_t> qa(static_cast<std::size_t>(n * n));
  for (auto& v : qa) {
    v = rng.uniform() < sparsity
            ? std::int8_t{0}
            : static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  rt::PackedS8 packed;
  packed.pack(qa.data(), n, n);
  std::vector<std::uint8_t> bq(static_cast<std::size_t>(n * n));
  for (auto& v : bq) {
    v = static_cast<std::uint8_t>(128 + rng.uniform_int(-127, 127));
  }
  std::vector<float> scales(static_cast<std::size_t>(n), 1.0f / 127.0f);
  std::vector<float> c(static_cast<std::size_t>(n * n));
  std::vector<std::int32_t> acc(static_cast<std::size_t>(n * n));
  rt::S8Epilogue ep;
  ep.scales = scales.data();
  ep.act_scale = 1.0f / 127.0f;
  for (auto _ : state) {
    rt::gemm_s8_nn(n, n, n, packed, bq.data(), acc.data(), c.data(), ep);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmS8)->Args({256, 0})->Args({256, 90})->Args({512, 0});

// Multi-thread GEMM scaling on a private work-stealing scheduler: Arg 0 is
// the scheduler's lane count. Row-block leaves are stolen dynamically, so
// items_per_second over the single-thread entry is the scheduler's parallel
// efficiency at this size.
void BM_GemmNNThreads(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  constexpr std::int64_t n = 512;
  rt::Rng rng(12);
  const rt::Tensor a = rt::Tensor::randn({n, n}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, n}, rng);
  rt::Tensor c({n, n});
  rt::Scheduler sched(threads);
  rt::SchedulerScope scope(sched);
  for (auto _ : state) {
    rt::gemm_nn(n, n, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNNThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// The training-path convolution pair (forward + full backward) across the
// four ResNet-18 residual-body shapes at 32x32 input resolution, measured at
// the kernel layer. Arg 0 runs the im2col reference (materialized column
// buffer + legacy streaming GEMM cores — the pre-fusion baseline), Arg 1 the
// fused implicit-GEMM kernels. Items == FLOPs, so items_per_second is
// directly comparable between the two.
void BM_ConvTrain(benchmark::State& state) {
  const bool implicit = state.range(0) == 1;
  struct Shape {
    std::int64_t ch, h, w;
  };
  // 64@32^2 -> 128@16^2 -> 256@8^2 -> 512@4^2: equal MACs per layer, the
  // full range of plane-vs-channel aspect ratios the kernels must tile.
  constexpr Shape kShapes[] = {
      {64, 32, 32}, {128, 16, 16}, {256, 8, 8}, {512, 4, 4}};
  constexpr std::int64_t kBatch = 4;
  const rt::ConvGeometry geom{3, 1, 1};

  rt::Rng rng(11);
  std::vector<rt::Tensor> xs, ws, gs, ys, dxs, dws;
  std::int64_t flops_per_iter = 0;
  for (const Shape& s : kShapes) {
    const std::int64_t ckk = s.ch * 9;
    xs.push_back(rt::Tensor::randn({kBatch, s.ch, s.h, s.w}, rng));
    ws.push_back(rt::Tensor::randn({s.ch, ckk}, rng, 0.05f));
    gs.push_back(rt::Tensor::randn({kBatch, s.ch, s.h, s.w}, rng));
    ys.push_back(rt::Tensor({kBatch, s.ch, s.h, s.w}));
    dxs.push_back(rt::Tensor({kBatch, s.ch, s.h, s.w}));
    dws.push_back(rt::Tensor({s.ch, ckk}));
    // forward + wgrad + dgrad each cost 2 * ch^2 * 9 * h * w MACs per sample.
    flops_per_iter += 3 * kBatch * 2 * s.ch * ckk * s.h * s.w;
  }
  rt::ConvKernelOpts opts;
  opts.algo =
      implicit ? rt::ConvAlgo::kImplicit : rt::ConvAlgo::kIm2colReference;

  for (auto _ : state) {
    for (std::size_t l = 0; l < xs.size(); ++l) {
      const Shape& s = kShapes[l];
      const std::int64_t plane = s.ch * s.h * s.w;
      dws[l].fill_(0.0f);
      dxs[l].fill_(0.0f);
      for (std::int64_t i = 0; i < kBatch; ++i) {
        rt::conv2d_forward_plane(xs[l].data() + i * plane, s.ch, s.h, s.w,
                                 geom, ws[l].data(), s.ch,
                                 ys[l].data() + i * plane, nullptr, false,
                                 opts);
        rt::conv2d_wgrad_plane(gs[l].data() + i * plane, xs[l].data() + i * plane,
                               s.ch, s.h, s.w, geom, s.ch, dws[l].data(),
                               opts);
        rt::conv2d_dgrad_plane(ws[l].data(), s.ch, gs[l].data() + i * plane,
                               s.ch, s.h, s.w, geom,
                               dxs[l].data() + i * plane, opts);
      }
      benchmark::DoNotOptimize(ys[l].data());
      benchmark::DoNotOptimize(dws[l].data());
      benchmark::DoNotOptimize(dxs[l].data());
    }
  }
  state.SetItemsProcessed(state.iterations() * flops_per_iter);
}
BENCHMARK(BM_ConvTrain)->Arg(0)->Arg(1);

// Nested-parallel conv training step: batch-outer tasks with the batch
// deliberately smaller than the lane count, so the flat decomposition (Arg 1
// == 0: batch-level parallel_for only, the old pool's composition limit)
// strands lanes while the nested one (Arg 1 == 1: kernels additionally
// split output-column tiles into stealable subtasks) backfills them. Arg 0
// is the scheduler lane count; both modes produce bitwise-identical
// results, so items_per_second isolates the composition win.
void BM_ConvTrainMT(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  const bool nested = state.range(1) == 1;
  struct Shape {
    std::int64_t ch, h, w;
  };
  constexpr Shape kShapes[] = {
      {64, 32, 32}, {128, 16, 16}, {256, 8, 8}, {512, 4, 4}};
  constexpr std::int64_t kBatch = 2;  // < threads: the compose-or-idle case
  const rt::ConvGeometry geom{3, 1, 1};

  rt::Rng rng(13);
  std::vector<rt::Tensor> xs, ws, gs, ys, dxs, dws;
  std::int64_t flops_per_iter = 0;
  for (const Shape& s : kShapes) {
    const std::int64_t ckk = s.ch * 9;
    xs.push_back(rt::Tensor::randn({kBatch, s.ch, s.h, s.w}, rng));
    ws.push_back(rt::Tensor::randn({s.ch, ckk}, rng, 0.05f));
    gs.push_back(rt::Tensor::randn({kBatch, s.ch, s.h, s.w}, rng));
    ys.push_back(rt::Tensor({kBatch, s.ch, s.h, s.w}));
    dxs.push_back(rt::Tensor({kBatch, s.ch, s.h, s.w}));
    dws.push_back(rt::Tensor({kBatch, s.ch, ckk}));  // per-sample dw slots
    flops_per_iter += 3 * kBatch * 2 * s.ch * ckk * s.h * s.w;
  }
  rt::Scheduler sched(threads);
  rt::SchedulerScope scope(sched);
  rt::ConvKernelOpts opts;
  opts.algo = rt::ConvAlgo::kImplicit;
  opts.parallel_tiles = nested;

  for (auto _ : state) {
    for (std::size_t l = 0; l < xs.size(); ++l) {
      const Shape& s = kShapes[l];
      const std::int64_t plane = s.ch * s.h * s.w;
      const std::int64_t ckk = s.ch * 9;
      dws[l].fill_(0.0f);
      dxs[l].fill_(0.0f);
      float* xd = xs[l].data();
      float* wd = ws[l].data();
      float* gd = gs[l].data();
      float* yd = ys[l].data();
      float* dxd = dxs[l].data();
      float* dwd = dws[l].data();
      sched.parallel_for(
          kBatch,
          [&, xd, wd, gd, yd, dxd, dwd](std::int64_t b0, std::int64_t b1) {
            for (std::int64_t i = b0; i < b1; ++i) {
              rt::conv2d_forward_plane(xd + i * plane, s.ch, s.h, s.w, geom,
                                       wd, s.ch, yd + i * plane, nullptr,
                                       false, opts);
              rt::conv2d_wgrad_plane(gd + i * plane, xd + i * plane, s.ch,
                                     s.h, s.w, geom, s.ch,
                                     dwd + i * s.ch * ckk, opts);
              rt::conv2d_dgrad_plane(wd, s.ch, gd + i * plane, s.ch, s.h,
                                     s.w, geom, dxd + i * plane, opts);
            }
          },
          /*grain=*/1);
      benchmark::DoNotOptimize(ys[l].data());
      benchmark::DoNotOptimize(dws[l].data());
      benchmark::DoNotOptimize(dxs[l].data());
    }
  }
  state.SetItemsProcessed(state.iterations() * flops_per_iter);
}
BENCHMARK(BM_ConvTrainMT)->Args({4, 0})->Args({4, 1})->UseRealTime();

void BM_ResNetForward(benchmark::State& state) {
  rt::Rng rng(2);
  auto model = state.range(0) == 18 ? rt::make_micro_resnet18(10, rng)
                                    : rt::make_micro_resnet50(10, rng);
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ResNetForward)->Arg(18)->Arg(50);

void BM_ResNetTrainStep(benchmark::State& state) {
  rt::Rng rng(3);
  auto model = state.range(0) == 18 ? rt::make_micro_resnet18(10, rng)
                                    : rt::make_micro_resnet50(10, rng);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 10);
  for (auto _ : state) {
    model->zero_grad();
    const rt::Tensor logits = model->forward(x);
    const rt::LossResult loss = rt::softmax_cross_entropy(logits, y);
    benchmark::DoNotOptimize(model->backward(loss.grad_logits));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ResNetTrainStep)->Arg(18)->Arg(50);

void BM_PgdAttack(benchmark::State& state) {
  rt::Rng rng(4);
  auto model = rt::make_micro_resnet18(10, rng);
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 10);
  rt::AttackConfig cfg;
  cfg.steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::pgd_attack(*model, x, y, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_PgdAttack)->Arg(1)->Arg(5)->Arg(10);

void BM_TradesStep(benchmark::State& state) {
  rt::Rng rng(5);
  auto model = rt::make_micro_resnet18(10, rng);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = static_cast<int>(i % 10);
  rt::TradesConfig cfg;
  cfg.attack.steps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    model->zero_grad();
    benchmark::DoNotOptimize(rt::trades_step(*model, x, y, cfg, rng));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_TradesStep)->Arg(1)->Arg(5);

void BM_OptimizerStep(benchmark::State& state) {
  rt::Rng rng(6);
  auto model = rt::make_micro_resnet50(10, rng);
  auto params = model->parameters();
  for (rt::Parameter* p : params) p->grad.fill_(0.01f);
  const bool adam = state.range(0) == 1;
  rt::Sgd sgd(params, {});
  rt::Adam adam_opt(params, {});
  for (auto _ : state) {
    if (adam) {
      adam_opt.step();
    } else {
      sgd.step();
    }
  }
  state.SetItemsProcessed(state.iterations() * model->num_parameters());
}
BENCHMARK(BM_OptimizerStep)->Arg(0)->Arg(1);  // 0 = SGD, 1 = Adam

void BM_ShrunkVsMaskedForward(benchmark::State& state) {
  // The shrink compiler's payoff measured at the kernel level: forward cost
  // of a 70%-channel-pruned r50, masked (range 0) vs physically shrunk (1).
  rt::Rng rng(7);
  auto model = rt::make_micro_resnet50(10, rng);
  rt::OmpConfig cfg;
  cfg.sparsity = 0.7f;
  cfg.granularity = rt::Granularity::kChannel;
  rt::omp_prune(*model, cfg);
  rt::neutralize_dead_internal_channels(*model);
  if (state.range(0) == 1) {
    rt::shrink_internal_channels(*model, rng);
  }
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_ShrunkVsMaskedForward)->Arg(0)->Arg(1);

// Serving-path throughput on a micro-r18 ticket. Arg 0 is the execution
// mode: 0 = eager Module::forward, 1 = compiled engine (fp32 kernels),
// 2 = compiled engine with native int8 execution (s8 weights, u8 offset
// activations, int32 accumulation, fused requant). Arg 1 is the element
// sparsity percentage (90 -> every conv packs as CSR taps; 0 -> dense
// implicit-GEMM panels, the shape where int8 shows its kernel speedup).
// items_per_second of {2, s} over {1, s} is the end-to-end int8 win.
void BM_EngineThroughput(benchmark::State& state) {
  const auto mode = state.range(0);
  const float sparsity = static_cast<float>(state.range(1)) / 100.0f;
  rt::Rng rng(9);
  auto model = rt::make_micro_resnet18(10, rng);
  if (sparsity > 0.0f) {
    rt::layerwise_magnitude_prune(*model, sparsity, rt::Granularity::kElement);
  }
  model->set_training(false);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);

  if (mode == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(model->forward(x));
    }
  } else {
    rt::CompileOptions options;
    options.int8_weights = mode == 2;
    rt::Session session(rt::Engine::compile(*model, options),
                        /*max_batch=*/16);
    for (auto _ : state) {
      benchmark::DoNotOptimize(session.predict(x));
    }
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_EngineThroughput)
    ->Args({0, 90})
    ->Args({1, 90})
    ->Args({2, 90})
    ->Args({1, 0})
    ->Args({2, 0});

// Session scaling: Arg concurrent threads hammering one shared Session.
// Near-linear items/sec scaling (up to the core count) is the target; on a
// single-core host this degenerates to a contention check.
void BM_EngineSessionThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  rt::Rng rng(10);
  auto model = rt::make_micro_resnet18(10, rng);
  rt::layerwise_magnitude_prune(*model, 0.9f, rt::Granularity::kElement);
  rt::Session session(rt::Engine::compile(*model), /*max_batch=*/16);
  const rt::Tensor x = rt::Tensor::uniform({16, 3, 16, 16}, rng, 0.0f, 1.0f);

  constexpr int kCallsPerThread = 4;
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        for (int c = 0; c < kCallsPerThread; ++c) {
          benchmark::DoNotOptimize(session.predict(x));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kCallsPerThread * 16);
}
BENCHMARK(BM_EngineSessionThreads)->Arg(1)->Arg(2)->Arg(4);

// Shared-scheduler serving: 4 concurrent Sessions (one caller thread each)
// over one compiled ticket and one work-stealing scheduler at the given
// lane count. Arg 1 == 0 is the flat baseline — each predict() runs its
// chunks serially on its calling thread, the only concurrency the old pool
// offered the engine — while Arg 1 == 1 splits every call's max_batch
// chunks into stealable tasks so the calls cooperatively fill the machine
// even when callers are fewer or slower than lanes. Logits are bitwise
// identical across modes.
void BM_EngineThroughputMT(benchmark::State& state) {
  const auto threads = static_cast<int>(state.range(0));
  const bool shared = state.range(1) == 1;
  constexpr int kSessions = 4;
  constexpr int kCallsPerSession = 2;
  constexpr std::int64_t kBatch = 32;

  rt::Rng rng(14);
  auto model = rt::make_micro_resnet18(10, rng);
  rt::layerwise_magnitude_prune(*model, 0.9f, rt::Granularity::kElement);
  model->set_training(false);
  const rt::Tensor x =
      rt::Tensor::uniform({kBatch, 3, 16, 16}, rng, 0.0f, 1.0f);

  auto plan = std::make_shared<const rt::CompiledTicket>(
      rt::Engine::compile(*model));
  rt::SessionOptions options;
  options.max_batch = 8;  // 4 chunk tasks per call
  options.shared_scheduler = shared;
  std::vector<std::unique_ptr<rt::Session>> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(std::make_unique<rt::Session>(plan, options));
  }
  rt::Scheduler sched(threads);

  for (auto _ : state) {
    std::vector<std::thread> callers;
    callers.reserve(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      callers.emplace_back([&, s] {
        rt::SchedulerScope scope(sched);
        for (int c = 0; c < kCallsPerSession; ++c) {
          benchmark::DoNotOptimize(sessions[static_cast<std::size_t>(s)]
                                       ->predict(x));
        }
      });
    }
    for (std::thread& caller : callers) caller.join();
  }
  state.SetItemsProcessed(state.iterations() * kSessions * kCallsPerSession *
                          kBatch);
}
BENCHMARK(BM_EngineThroughputMT)->Args({4, 0})->Args({4, 1})->UseRealTime();

void BM_KlDivergence(benchmark::State& state) {
  rt::Rng rng(8);
  const auto n = state.range(0);
  const rt::Tensor a = rt::Tensor::randn({n, 10}, rng);
  const rt::Tensor b = rt::Tensor::randn({n, 10}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::kl_divergence(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KlDivergence)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
