// Fig. 8 + Tab. I: the full property battery of A-IMP robust tickets vs IMP
// natural tickets at the paper's four sparsities {0.20, 0.5904, 0.7908,
// 0.8926}: natural accuracy, adversarial accuracy (PGD), corruption
// accuracy, ECE, NLL, and OoD ROC-AUC — for both MicroResNet18 and -50.
//
// Paper shape to reproduce: robust tickets win accuracy, Adv-Acc, Crpt-Acc
// across the board; the paper's Tab. I shows natural tickets can have lower
// ECE/NLL (they are less over-confident on easy in-distribution data), and
// reports mixed ROC-AUC (natural better on R18, robust better on R50).
#include "bench_common.hpp"

int main() {
  rtb::banner("Fig. 8 / Tab. I — ticket properties (A-IMP vs IMP)",
              "robust wins Acc/Adv-Acc/Crpt-Acc at every sparsity");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  // The paper's sparsity grid corresponds to IMP rounds at rate 0.2; with
  // the quick profile's coarser rate the trajectory passes nearby points.
  rt::ImpConfig imp;
  imp.target_sparsity = 0.8926f;
  imp.rate_per_round = 0.2f;  // exact paper schedule: 4 of its rounds match
  imp.epochs_per_round = prof.imp_epochs_per_round;

  const rt::TaskData task =
      lab.downstream("cifar10", prof.down_train, prof.down_test);
  const rt::Dataset ood = rt::generate_ood_dataset(prof.down_test, 31337);

  rt::EvalConfig eval;
  eval.attack = lab.pretrain_attack();
  eval.attack.steps = 10;

  rt::Table table({"model", "ticket", "sparsity", "acc", "adv_acc",
                   "crpt_acc", "ece", "nll", "roc_auc"});

  const std::vector<std::string> archs =
      prof.quick() ? std::vector<std::string>{"r18"}
                   : std::vector<std::string>{"r18", "r50"};
  for (const std::string& arch : archs) {
    for (const bool robust : {false, true}) {
      const auto scheme = robust ? rt::PretrainScheme::kAdversarial
                                 : rt::PretrainScheme::kNatural;
      rt::ImpConfig cfg = imp;
      cfg.adversarial = robust;
      cfg.attack = lab.pretrain_attack();

      auto model = lab.dense_model(arch, scheme);
      rt::Rng imp_rng(808);
      const auto trajectory =
          rt::imp_prune_trajectory(*model, lab.source().train, cfg, imp_rng);

      // Paper grid = rounds 1, 4, 7, 10 of the 0.2-rate schedule.
      for (const int round : {1, 4, 7, 10}) {
        if (round > static_cast<int>(trajectory.size())) break;
        const auto& point = trajectory[static_cast<std::size_t>(round - 1)];
        auto ticket = lab.dense_model(arch, scheme);
        point.masks.apply(*ticket);
        rt::Rng rng(909);
        rt::finetune_whole_model(*ticket, task, rtb::finetune_config(), rng);
        const rt::EvalReport r = rt::evaluate_full(*ticket, task.test, ood, eval);
        table.add_row({arch, std::string(robust ? "robust" : "natural"),
                       static_cast<double>(point.sparsity), 100.0 * r.accuracy,
                       100.0 * r.adv_accuracy, 100.0 * r.corrupt_accuracy,
                       r.ece, r.nll, r.ood_auc});
        std::printf(
            "  %s %-7s s=%.4f acc %.2f adv %.2f crpt %.2f ece %.4f nll %.4f "
            "auc %.3f\n",
            arch.c_str(), robust ? "robust" : "natural", point.sparsity,
            100.0 * r.accuracy, 100.0 * r.adv_accuracy,
            100.0 * r.corrupt_accuracy, r.ece, r.nll, r.ood_auc);
      }
    }
  }
  table.set_precision(4);
  rtb::emit(table, "fig8_tab1_properties");
  return 0;
}
