// Ablation: weight rewinding in iterative pruning (design choice of
// DESIGN.md: "IMP rewinds to pretrained weights, Chen et al. protocol").
//
// Compares three ways of reaching the same downstream sparsity from the same
// pretrained model:
//   imp-rewind   — IMP with rewind-to-pretrained after every round (the
//                  paper's transfer-LTH protocol; the ticket is m ⊙ θ_pre);
//   imp-continue — IMP whose weights keep training across rounds (no rewind);
//   gmp          — gradual magnitude pruning during finetuning (no rounds,
//                  no rewind, cubic schedule).
// Each resulting sparse model is then finetuned (rewind variants) or taken
// as-is (gmp trains in place) and evaluated on the downstream test split,
// for both robust and natural pretraining.
//
// Expected shape: all three land close; rewind preserves the m ⊙ θ_pre
// ticket semantics the paper's transfer pipeline needs (and its robust
// variant keeps the robust-vs-natural margin), while gmp/continue trade that
// for simplicity.
#include "bench_common.hpp"
#include "prune/gmp.hpp"
#include "prune/imp.hpp"

int main() {
  rtb::banner("Ablation — IMP rewinding vs continued training vs GMP (R18)",
              "variants land close at matched sparsity; robust > natural "
              "margin survives in all");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();
  const float target = prof.imp_target;
  const rt::TaskData task =
      lab.downstream("cifar10", prof.down_train, prof.down_test);

  rt::Table table({"variant", "pretrain", "sparsity", "test_acc"});
  table.set_precision(2);

  for (rt::PretrainScheme scheme :
       {rt::PretrainScheme::kAdversarial, rt::PretrainScheme::kNatural}) {
    // --- IMP with and without rewind, on the downstream task (DS). --------
    for (bool rewind : {true, false}) {
      rt::Rng rng(88);
      auto model = lab.dense_model("r18", scheme);
      rt::ImpConfig cfg;
      cfg.target_sparsity = target;
      cfg.rate_per_round = prof.imp_rate;
      cfg.epochs_per_round = prof.imp_epochs_per_round;
      cfg.adversarial = scheme == rt::PretrainScheme::kAdversarial;
      cfg.attack = lab.pretrain_attack();
      cfg.rewind_to_pretrained = rewind;
      rt::imp_prune(*model, task.train, cfg, rng);
      const double acc = rt::finetune_whole_model(
          *model, task, rtb::finetune_config(), rng);
      const double sparsity =
          rt::model_sparsity(model->prunable_parameters());
      table.add_row({std::string(rewind ? "imp-rewind" : "imp-continue"),
                     std::string(rt::scheme_name(scheme)), sparsity,
                     100.0 * acc});
      std::printf("  %-12s %-12s s=%.3f acc %.2f\n",
                  rewind ? "imp-rewind" : "imp-continue",
                  rt::scheme_name(scheme), sparsity, 100.0 * acc);
    }

    // --- GMP: prune while finetuning; no separate finetune pass. -----------
    {
      rt::Rng rng(88);
      auto model = lab.dense_model("r18", scheme);
      model->reset_head(task.train.num_classes, rng);
      rt::GmpConfig cfg;
      cfg.final_sparsity = target;
      cfg.epochs = rtb::finetune_config().epochs +
                   prof.imp_epochs_per_round * 4;  // match total budget
      cfg.adversarial = scheme == rt::PretrainScheme::kAdversarial;
      cfg.attack = lab.pretrain_attack();
      rt::gmp_train_prune(*model, task.train, cfg, rng);
      const double acc = rt::evaluate_accuracy(*model, task.test);
      const double sparsity =
          rt::model_sparsity(model->prunable_parameters());
      table.add_row({std::string("gmp"),
                     std::string(rt::scheme_name(scheme)), sparsity,
                     100.0 * acc});
      std::printf("  %-12s %-12s s=%.3f acc %.2f\n", "gmp",
                  rt::scheme_name(scheme), sparsity, 100.0 * acc);
    }
  }
  rtb::emit(table, "ablation_rewind");
  return 0;
}
