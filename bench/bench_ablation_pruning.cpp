// Ablation: ticket-scoring design choices (DESIGN.md).
//
// The paper draws OMP tickets with GLOBAL magnitude ranking. This ablation
// compares, at matched sparsity and on the same robust pretrained model:
//   random masks (floor), per-layer uniform magnitude, global magnitude
//   (the paper's choice), and SNIP connection sensitivity.
// Expectation: global magnitude >= layerwise > random; SNIP competitive.
// Also verifies the robust-over-natural gap survives the scorer choice.
#include "bench_common.hpp"

int main() {
  rtb::banner("Ablation — pruning scorer (global vs layerwise vs random vs SNIP)",
              "global magnitude best or tied; random clearly worst");
  auto& lab = rtb::lab();
  const auto& prof = rtb::profile();

  const rt::TaskData task =
      lab.downstream("cifar10", prof.down_train, prof.down_test);
  const std::vector<float> sparsities =
      prof.quick() ? std::vector<float>{0.7f, 0.9f}
                   : std::vector<float>{0.5f, 0.7f, 0.9f, 0.95f};

  rt::Table table({"scheme", "scorer", "sparsity", "finetune_acc"});

  for (const bool robust : {false, true}) {
    const auto scheme = robust ? rt::PretrainScheme::kAdversarial
                               : rt::PretrainScheme::kNatural;
    for (float sparsity : sparsities) {
      for (const std::string scorer :
           {"global", "layerwise", "random", "snip"}) {
        auto model = lab.dense_model("r18", scheme);
        rt::Rng prng(404);
        if (scorer == "global") {
          rt::OmpConfig cfg;
          cfg.sparsity = sparsity;
          rt::omp_prune(*model, cfg);
        } else if (scorer == "layerwise") {
          rt::layerwise_magnitude_prune(*model, sparsity,
                                        rt::Granularity::kElement);
        } else if (scorer == "random") {
          rt::random_prune(*model, sparsity, rt::Granularity::kElement, prng);
        } else {
          rt::SnipConfig cfg;
          cfg.sparsity = sparsity;
          rt::snip_prune(*model, lab.source().train, cfg, prng);
        }
        rt::Rng rng(505);
        const double acc = rt::finetune_whole_model(
            *model, task, rtb::finetune_config(), rng);
        table.add_row({std::string(robust ? "robust" : "natural"), scorer,
                       static_cast<double>(sparsity), 100.0 * acc});
        std::printf("  %-7s %-9s s=%.2f  acc %.2f\n",
                    robust ? "robust" : "natural", scorer.c_str(), sparsity,
                    100.0 * acc);
      }
    }
  }
  table.set_precision(2);
  rtb::emit(table, "ablation_pruning");
  return 0;
}
