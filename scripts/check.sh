#!/usr/bin/env bash
# One-command PR gate: tier-1 verify (configure + build + full ctest) plus a
# bench_kernels smoke run so kernel-throughput regressions surface early.
#
#   scripts/check.sh               # gate only (human-readable smoke output)
#   scripts/check.sh --bench-json  # additionally write BENCH_kernels.json —
#                                  # GEMM + conv + engine throughput (single-
#                                  # and multi-thread) in google-benchmark's
#                                  # JSON schema, so the kernel perf
#                                  # trajectory is machine-readable across
#                                  # PRs.
#   scripts/check.sh --tsan        # additionally build build-tsan/ with
#                                  # -DRT_SANITIZE=thread and run the
#                                  # concurrency-heavy suites (scheduler,
#                                  # engine, common, gemm) under
#                                  # ThreadSanitizer.
#
# Thread counts are pinned via RT_THREADS for reproducibility; override by
# exporting RT_THREADS before invoking.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_JSON=0
TSAN=0
for arg in "$@"; do
  case "$arg" in
    --bench-json) BENCH_JSON=1 ;;
    --tsan) TSAN=1 ;;
    *) echo "usage: $0 [--bench-json] [--tsan]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
export RT_THREADS="${RT_THREADS:-$JOBS}"

cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

if [[ "${TSAN}" == 1 ]]; then
  echo "== ThreadSanitizer pass (scheduler + engine + serving suites) =="
  cmake -B build-tsan -S . -DRT_SANITIZE=thread -DRT_BUILD_BENCHES=OFF \
        -DRT_BUILD_EXAMPLES=OFF -DRT_MARCH_NATIVE=OFF
  cmake --build build-tsan -j"${JOBS}" \
        --target test_scheduler test_engine test_serving test_common test_gemm
  ctest --test-dir build-tsan --output-on-failure -j1 \
        -R 'test_scheduler|test_engine|test_serving|test_common|test_gemm'
fi

# run_bench_smoke <binary> <filter> <json_out> <description>
# --benchmark_out writes the JSON in addition to the console report, so one
# run serves both the human gate and the machine-readable snapshot.
run_bench_smoke() {
  local binary="$1" filter="$2" json_out="$3" description="$4"
  if [[ ! -x "build/${binary}" ]]; then
    echo "${binary} not built (google-benchmark missing); skipping smoke run"
    return
  fi
  echo "== ${binary} smoke (${description}) =="
  local extra_args=()
  if [[ "${BENCH_JSON}" == 1 ]]; then
    extra_args+=(--benchmark_out="${json_out}" --benchmark_out_format=json)
  fi
  "./build/${binary}" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time=0.05 \
    "${extra_args[@]}"
  if [[ "${BENCH_JSON}" == 1 ]]; then
    echo "wrote ${json_out}"
  fi
}

run_bench_smoke bench_kernels 'BM_Matmul|BM_Gemm|BM_ConvTrain|BM_EngineThroughput' \
  BENCH_kernels.json "GEMM + conv + engine throughput"
run_bench_smoke bench_serving 'BM_Server' \
  BENCH_serving.json "async micro-batching front-end"

echo "check.sh: all gates passed"
