#!/usr/bin/env bash
# One-command PR gate: tier-1 verify (configure + build + full ctest) plus a
# bench_kernels smoke run so kernel-throughput regressions surface early.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

if [[ -x build/bench_kernels ]]; then
  echo "== bench_kernels smoke (GEMM + engine throughput) =="
  ./build/bench_kernels \
    --benchmark_filter='BM_Matmul|BM_Gemm|BM_EngineThroughput' \
    --benchmark_min_time=0.05
else
  echo "bench_kernels not built (google-benchmark missing); skipping smoke run"
fi

echo "check.sh: all gates passed"
