#!/usr/bin/env bash
# One-command PR gate: tier-1 verify (configure + build + full ctest) plus a
# bench_kernels smoke run so kernel-throughput regressions surface early.
#
#   scripts/check.sh               # gate only (human-readable smoke output)
#   scripts/check.sh --bench-json  # additionally write BENCH_kernels.json —
#                                  # GEMM + conv + engine throughput in
#                                  # google-benchmark's JSON schema, so the
#                                  # kernel perf trajectory is machine-
#                                  # readable across PRs.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_JSON=0
for arg in "$@"; do
  case "$arg" in
    --bench-json) BENCH_JSON=1 ;;
    *) echo "usage: $0 [--bench-json]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

KERNEL_FILTER='BM_Matmul|BM_Gemm|BM_ConvTrain|BM_EngineThroughput'
if [[ -x build/bench_kernels ]]; then
  echo "== bench_kernels smoke (GEMM + conv + engine throughput) =="
  # --benchmark_out writes the JSON in addition to the console report, so
  # one run serves both the human gate and the machine-readable snapshot.
  EXTRA_ARGS=()
  if [[ "${BENCH_JSON}" == 1 ]]; then
    EXTRA_ARGS+=(--benchmark_out=BENCH_kernels.json
                 --benchmark_out_format=json)
  fi
  ./build/bench_kernels \
    --benchmark_filter="${KERNEL_FILTER}" \
    --benchmark_min_time=0.05 \
    "${EXTRA_ARGS[@]}"
  if [[ "${BENCH_JSON}" == 1 ]]; then
    echo "wrote BENCH_kernels.json"
  fi
else
  echo "bench_kernels not built (google-benchmark missing); skipping smoke run"
fi

echo "check.sh: all gates passed"
