#!/usr/bin/env bash
# One-command PR gate: tier-1 verify (configure + build + full ctest) plus a
# bench_kernels smoke run so kernel-throughput regressions surface early.
# The main build promotes warnings to errors (-DRT_WERROR=ON); local builds
# outside the gate keep them as warnings.
#
#   scripts/check.sh               # gate only (human-readable smoke output)
#   scripts/check.sh --bench-json  # additionally write BENCH_kernels.json —
#                                  # GEMM + conv + engine throughput (single-
#                                  # and multi-thread) in google-benchmark's
#                                  # JSON schema, so the kernel perf
#                                  # trajectory is machine-readable across
#                                  # PRs.
#   scripts/check.sh --lint        # additionally run tools/rtlint over src/
#                                  # and an -DRT_AUDIT=ON build of the audit +
#                                  # concurrency suites (allocation counting,
#                                  # lock-order assertions).
#   scripts/check.sh --tsan        # additionally build build-tsan/ with
#                                  # -DRT_SANITIZE=thread and run the
#                                  # concurrency-heavy suites (scheduler,
#                                  # engine, serving, registry, common, gemm,
#                                  # quant kernels, prediction cache, socket
#                                  # front-end) under ThreadSanitizer.
#   scripts/check.sh --asan        # same suites under AddressSanitizer
#                                  # (-DRT_SANITIZE=address).
#   scripts/check.sh --ubsan       # same suites under UBSan with
#                                  # -fno-sanitize-recover=all, so any UB
#                                  # report fails the gate.
#
# Thread counts are pinned via RT_THREADS for reproducibility; override by
# exporting RT_THREADS before invoking.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_JSON=0
LINT=0
TSAN=0
ASAN=0
UBSAN=0
for arg in "$@"; do
  case "$arg" in
    --bench-json) BENCH_JSON=1 ;;
    --lint) LINT=1 ;;
    --tsan) TSAN=1 ;;
    --asan) ASAN=1 ;;
    --ubsan) UBSAN=1 ;;
    *) echo "usage: $0 [--bench-json] [--lint] [--tsan] [--asan] [--ubsan]" >&2
       exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
export RT_THREADS="${RT_THREADS:-$JOBS}"

cmake -B build -S . -DRT_WERROR=ON
cmake --build build -j"${JOBS}"
ctest --test-dir build --output-on-failure -j"${JOBS}"

# The concurrency-heavy suites every sanitizer pass exercises, plus the
# quantized kernel suite (int8 packing/requant arithmetic is where UB —
# narrowing, shifts, aliasing — would live). One list so the echo, the build
# targets, and the ctest filter cannot drift apart.
SAN_SUITES=(test_scheduler test_engine test_serving test_registry test_common
            test_gemm test_quant_kernels test_cache test_net)
SAN_FILTER="$(IFS='|'; echo "${SAN_SUITES[*]}")"

# run_sanitizer_pass <name> <build_dir> <rt_sanitize_value>
run_sanitizer_pass() {
  local name="$1" dir="$2" value="$3"
  echo "== ${name} pass (${SAN_SUITES[*]}) =="
  cmake -B "${dir}" -S . -DRT_SANITIZE="${value}" -DRT_BUILD_BENCHES=OFF \
        -DRT_BUILD_EXAMPLES=OFF -DRT_MARCH_NATIVE=OFF
  cmake --build "${dir}" -j"${JOBS}" --target "${SAN_SUITES[@]}"
  ctest --test-dir "${dir}" --output-on-failure -j1 -R "${SAN_FILTER}"
}

if [[ "${LINT}" == 1 ]]; then
  echo "== rtlint pass (tools/rtlint over src/ and tools/) =="
  ./build/rtlint --root . src tools
  echo "== RT_AUDIT pass (alloc counting + lock-order assertions) =="
  cmake -B build-audit -S . -DRT_AUDIT=ON -DRT_BUILD_BENCHES=OFF \
        -DRT_BUILD_EXAMPLES=OFF
  cmake --build build-audit -j"${JOBS}" \
        --target test_audit test_scheduler test_serving
  ctest --test-dir build-audit --output-on-failure -j1 \
        -R 'test_audit|test_scheduler|test_serving'
fi

if [[ "${TSAN}" == 1 ]]; then
  # TSan only observes races that actually interleave, so the pass is
  # meaningless at RT_THREADS=1 (this dev container is single-CPU; see
  # ROADMAP.md "ops notes"). Force at least two workers: on one CPU the
  # threads still time-slice across every synchronization point, which is
  # exactly the traffic TSan instruments.
  RT_THREADS="$(( RT_THREADS > 2 ? RT_THREADS : 2 ))" \
    run_sanitizer_pass ThreadSanitizer build-tsan thread
fi

if [[ "${ASAN}" == 1 ]]; then
  run_sanitizer_pass AddressSanitizer build-asan address
fi

if [[ "${UBSAN}" == 1 ]]; then
  run_sanitizer_pass UndefinedBehaviorSanitizer build-ubsan undefined
fi

# run_bench_smoke <binary> <filter> <json_out> <description>
# --benchmark_out writes the JSON in addition to the console report, so one
# run serves both the human gate and the machine-readable snapshot.
run_bench_smoke() {
  local binary="$1" filter="$2" json_out="$3" description="$4"
  if [[ ! -x "build/${binary}" ]]; then
    echo "${binary} not built (google-benchmark missing); skipping smoke run"
    return
  fi
  echo "== ${binary} smoke (${description}) =="
  local extra_args=()
  if [[ "${BENCH_JSON}" == 1 ]]; then
    extra_args+=(--benchmark_out="${json_out}" --benchmark_out_format=json)
  fi
  # Explicit exit propagation, independent of errexit. `set -e` does cover
  # this call today (verified: a failing fake bench binary exits the gate),
  # but bash suppresses errexit throughout a function body the moment any
  # caller up the chain runs it in a condition context (`if check.sh`,
  # `check.sh || notify`) — this guard keeps a failed or crashed bench
  # binary fatal under every invocation style.
  local status=0
  "./build/${binary}" \
    --benchmark_filter="${filter}" \
    --benchmark_min_time=0.05 \
    "${extra_args[@]}" || status=$?
  if (( status != 0 )); then
    echo "${binary} failed (exit ${status}); failing the gate" >&2
    exit "${status}"
  fi
  if [[ "${BENCH_JSON}" == 1 ]]; then
    echo "wrote ${json_out}"
  fi
}

run_bench_smoke bench_kernels 'BM_Matmul|BM_Gemm|BM_ConvTrain|BM_EngineThroughput' \
  BENCH_kernels.json "GEMM + conv + engine throughput"
run_bench_smoke bench_serving 'BM_Server|BM_Registry|BM_Cache|BM_Net' \
  BENCH_serving.json \
  "async micro-batching front-end + registry hot swap + prediction cache + socket front-end"

echo "check.sh: all gates passed"
